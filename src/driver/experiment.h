/**
 * @file
 * Experiment harness shared by every table/figure reproduction binary:
 * build a workload, profile it on the train input, compile it under one
 * or more configurations, simulate on the ref input, and validate that
 * every configuration computes the same architected checksum as the
 * source program.
 */
#ifndef EPIC_DRIVER_EXPERIMENT_H
#define EPIC_DRIVER_EXPERIMENT_H

#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "driver/compiler.h"
#include "sim/interp.h"
#include "sim/timing.h"
#include "support/supervision/supervise.h"
#include "workloads/workload.h"

namespace epic {

class FaultInjector;
class RunManifest;

/** Options for a workload run. */
struct RunOptions
{
    SpecModel spec_model = SpecModel::General;
    InputKind profile_input = InputKind::Train;
    InputKind run_input = InputKind::Ref;
    /// Worker threads for the workload x config fan-out (and, via
    /// CompileOptions::jobs, the per-function compile tier). Results
    /// merge in workload/config order, so any jobs value produces
    /// bit-identical reports to jobs = 1.
    int jobs = 1;
    /// Hook to tweak compile options per configuration (ablations).
    std::function<void(CompileOptions &)> tweak;

    // ---- Run supervision (support/supervision/supervise.h) ----
    /// Arm the supervision layer: budgets/deadline below, validation-
    /// aware bounded retry, and the sim degradation ladder. Off by
    /// default — the legacy single-attempt behaviour (and its artifact
    /// bytes) are completely unchanged.
    bool supervise = false;
    SupervisionOptions supervision;
    /// Known-good architected checksum for this workload (set by
    /// runWorkload from the source-truth run): a supervised detailed
    /// sim whose result disagrees is treated as Faulted and retried.
    std::optional<int64_t> expected_checksum;
    /// Sim-layer chaos injection (FaultInjector::simPlan); null = off.
    /// Faults are applied to the first attempt only (transient model).
    FaultInjector *sim_inject = nullptr;

    // ---- Crash-safe resumable fleet runs ----
    /// Durable per-run manifest; completed (workload x config) records
    /// are appended as they finish (fsync'd — they survive kill -9).
    RunManifest *manifest = nullptr;
    /// With a manifest: tasks whose key already has a record are not
    /// re-run; the stored record is emitted verbatim in the artifact,
    /// keeping the resumed artifact byte-identical to an uninterrupted
    /// run.
    bool resume = false;
    /// Workload-name substring filters; empty = the whole suite.
    std::vector<std::string> only;

    // ---- Fidelity mode (sim/timing.h SimMode, DESIGN.md §18) ----
    /// Forwarded to every detailed timing sim. Sampled mode attaches a
    /// SampledStats to the ConfigRun, tags the run's sample stream with
    /// mode=sampled + its scale factors, and folds a fingerprint into
    /// the manifest key, so a resumed fleet never mixes sampled and
    /// detailed records.
    SimMode sim_mode = SimMode::Detailed;
    uint64_t ff_functional = 0; ///< ops fast-forwarded per phase
    uint64_t detail_window = 0; ///< ops simulated in detail per window

    // ---- PMU sampling (sim/pmu/pmu.h) ----
    /// Forwarded to every detailed timing sim; off by default (legacy
    /// artifact bytes unchanged). Enabled features put a PmuData on the
    /// ConfigRun and fold a fingerprint into the manifest key, so a
    /// resumed fleet never mixes sampled and unsampled records.
    PmuOptions pmu;

    // ---- ALAT geometry (sim/alat.h; ILP-CS-DS data speculation) ----
    /// Overrides for MachineConfig::alat_entries / alat_assoc (assoc
    /// <= 0 selects fully-associative). Unset = machine defaults; a set
    /// value folds a fingerprint into the manifest key since it changes
    /// record bytes (recovery cycles).
    std::optional<int> alat_entries;
    std::optional<int> alat_assoc;
};

/** One configuration's full outcome. */
struct ConfigRun
{
    Config config = Config::ONS;
    bool ok = false;
    std::string error;
    int64_t checksum = 0;
    Perfmon pm;

    /// What the compilation firewall degraded (clean() if nothing).
    FallbackReport fallback;

    /// Compilation statistics (one shared block, see driver/pipeline.h).
    CompileStats stats;
    /// Per-(pass, rung) compile-time attribution.
    PipelineStats pipeline;
    int instrs_source = 0;
    int instrs_final = 0;

    /// The compiled program (kept for function-level attribution).
    std::shared_ptr<Program> prog;

    /// PMU streams of the accepted detailed sim (null when PMU off,
    /// the run degraded to functional, or it was manifest-resumed).
    std::shared_ptr<PmuData> pmu;

    /// Sampled-mode extrapolation (enabled only under SimMode::Sampled;
    /// default-disabled state keeps legacy artifact bytes unchanged).
    SampledStats sampled;

    // ---- Supervision outcome (defaults reproduce legacy behaviour) ----
    /// Structured status of the accepted result (or last failure).
    RunStatus sim_status = RunStatus::Ok;
    /// Which ladder rung produced it: "detailed" (full timing sim),
    /// "functional" (architected result only, pm is zero), "skipped"
    /// (quarantined, ok = false).
    const char *sim_rung = "detailed";
    /// Detailed-sim attempts consumed (>= 1 once a sim ran).
    int sim_attempts = 0;
    /// Checkpoints taken / last blob size (supervision.checkpoint_*).
    uint64_t ckpt_instrs = 0;
    uint64_t ckpt_bytes = 0;
    /// Restored from the fleet manifest instead of re-run; record_json
    /// then holds the stored JSONL record verbatim.
    bool resumed = false;
    std::string record_json;
};

/** Outcome across configurations, plus the source-truth checksum. */
struct WorkloadRuns
{
    std::string name;
    int64_t source_checksum = 0;
    bool all_match = false; ///< every config reproduced the checksum
    std::string error;      ///< non-empty: the source run itself failed
    std::map<Config, ConfigRun> by_config;
    /// Firewall fallbacks aggregated across all configurations.
    FallbackReport fallback;
    /// Per-pass instrumentation aggregated across all configurations.
    PipelineStats pipeline;
};

/** Run one workload under one configuration. */
ConfigRun runConfig(const Workload &w, Config cfg,
                    const RunOptions &opts = {});

/** Run one workload under a set of configurations (with validation). */
WorkloadRuns runWorkload(const Workload &w,
                         const std::vector<Config> &configs,
                         const RunOptions &opts = {});

/** The standard four configurations in Table 1 order. */
const std::vector<Config> &standardConfigs();

/**
 * Run the whole suite under the given configurations; `progress`
 * (optional) is invoked per workload for console feedback.
 */
std::vector<WorkloadRuns>
runSuite(const std::vector<Config> &configs, const RunOptions &opts = {},
         const std::function<void(const WorkloadRuns &)> &progress = {});

} // namespace epic

#endif // EPIC_DRIVER_EXPERIMENT_H
