/**
 * @file
 * Code-generation configuration identifiers (paper Table 1 key) and the
 * firewall's degradation ladder.
 *
 * The four configurations double as *robustness rungs*: when the
 * compilation firewall (driver/firewall.h) rejects a function's code at
 * a verifier gate, the function alone is retried one rung down,
 * IlpCs -> IlpNs -> ONS -> Gcc, until a rung produces verifiable code.
 * Gcc is the floor: classical optimization only, conservative
 * single-bundle scheduling.
 */
#ifndef EPIC_DRIVER_CONFIG_H
#define EPIC_DRIVER_CONFIG_H

namespace epic {

/** Code-generation configuration (paper Table 1 key). IlpCsDs extends
 *  the paper's ILP-CS with IA-64 data speculation (ld.a/chk.a + ALAT)
 *  and sits one rung above it on the ladder. */
enum class Config { Gcc, ONS, IlpNs, IlpCs, IlpCsDs };

/** Printable configuration name. */
const char *configName(Config c);

/**
 * One step down the degradation ladder. Returns false when `c` is
 * already the Gcc floor (in which case *lower is left untouched).
 */
bool degradeConfig(Config c, Config *lower);

} // namespace epic

#endif // EPIC_DRIVER_CONFIG_H
