#include "driver/experiment.h"

#include <cstdlib>
#include <cstring>

#include "sim/checkpoint.h"
#include "support/faultinject.h"
#include "support/logging.h"
#include "support/supervision/manifest.h"
#include "support/telemetry/artifact.h"
#include "support/telemetry/trace.h"
#include "support/threadpool.h"

namespace epic {

const std::vector<Config> &
standardConfigs()
{
    static const std::vector<Config> kConfigs = {
        Config::Gcc, Config::ONS, Config::IlpNs, Config::IlpCs};
    return kConfigs;
}

namespace {

/** Build + profile a fresh source program for a workload. */
std::unique_ptr<Program>
buildProfiled(const Workload &w, const RunOptions &opts,
              std::string *error)
{
    auto prog = w.build();
    prog->layoutData();
    Memory mem;
    mem.initFromProgram(*prog);
    w.write_input(*prog, mem, opts.profile_input);
    auto prof = profileRun(*prog, mem);
    if (!prof.ok) {
        *error = "profile run failed: " + prof.error;
        return nullptr;
    }
    return prog;
}

/** RAII arm/disarm for the per-task deadline poll. */
struct SupervisionScope
{
    explicit SupervisionScope(bool on) : on_(on)
    {
        if (on_)
            armSupervision();
    }
    ~SupervisionScope()
    {
        if (on_)
            disarmSupervision();
    }
    SupervisionScope(const SupervisionScope &) = delete;
    SupervisionScope &operator=(const SupervisionScope &) = delete;
    bool on_;
};

/** A stop request observable at this poll site? */
bool
stopped()
{
    return supervisionActive() && stopRequested();
}

/**
 * Manifest key for one (workload x config) task: human-readable prefix
 * plus a fingerprint of everything that determines the record bytes —
 * the workload's content signature, the configuration, the input/spec
 * model choices and the artifact schema version. A record is only
 * reused when all of them match.
 */
std::string
manifestKey(const Workload &w, Config cfg, const RunOptions &o)
{
    uint64_t h = fnv1a(kRunSchemaVersion);
    h = fnv1a(w.signature, h);
    h = fnv1a(o.spec_model == SpecModel::Sentinel ? "sentinel"
                                                  : "general",
              h);
    h = fnv1a(std::to_string(static_cast<int>(o.profile_input)), h);
    h = fnv1a(std::to_string(static_cast<int>(o.run_input)), h);
    if (o.pmu.enabled()) {
        // PMU configuration changes the record bytes (pmu.* keys), so
        // sampled and unsampled fleets never reuse each other's records.
        h = fnv1a("pmu:" + std::to_string(o.pmu.sample_every) + "," +
                      std::to_string(o.pmu.ear_latency_min) + "," +
                      std::to_string(o.pmu.btb_depth) + "," +
                      std::to_string(o.pmu.regions ? 1 : 0),
                  h);
    }
    if (o.sim_mode == SimMode::Sampled) {
        // Sampled runs extrapolate (different record bytes): never let
        // a resumed fleet reuse a detailed record or vice versa.
        h = fnv1a("sampled:" + std::to_string(o.ff_functional) + "," +
                      std::to_string(o.detail_window),
                  h);
    }
    if (o.alat_entries || o.alat_assoc) {
        // ALAT geometry changes recovery-cycle record bytes.
        h = fnv1a("alat:" + std::to_string(o.alat_entries.value_or(-1)) +
                      "," + std::to_string(o.alat_assoc.value_or(-1)),
                  h);
    }
    return w.name + "|" + std::string(configName(cfg)) + "|" +
           hashHex(h);
}

/** Did a stored manifest record complete successfully? */
bool
recordSaysOk(const std::string &rec)
{
    return rec.find("\"ok\":true") != std::string::npos;
}

/** Architected checksum carried by a stored manifest record. */
int64_t
recordChecksum(const std::string &rec)
{
    static const char *const kTag = "\"checksum\":";
    const size_t p = rec.find(kTag);
    if (p == std::string::npos)
        return 0;
    return std::strtoll(rec.c_str() + p + std::strlen(kTag), nullptr,
                        10);
}

/** Fresh input image for the compiled program. */
void
buildImage(const Workload &w, const Program &prog, Memory &mem,
           const RunOptions &opts)
{
    mem.initFromProgram(prog);
    w.write_input(const_cast<Program &>(prog), mem, opts.run_input);
}

/**
 * Supervised simulation of a compiled program: budgets + deadline,
 * validation-aware bounded retry of the detailed sim, then the
 * degradation ladder (functional-only, then skip-with-record) —
 * mirroring the compile firewall's rung discipline at the sim layer.
 */
void
superviseSim(const Workload &w, Config cfg, const RunOptions &opts,
             Program &prog, ConfigRun &out)
{
    const SupervisionOptions &sup = opts.supervision;
    SupervisionScope scope(sup.deadline_ms > 0);

    TimingOptions base;
    base.spec_model = opts.spec_model;
    if (sup.max_cycles)
        base.max_cycles = sup.max_cycles;
    if (sup.max_depth)
        base.max_depth = sup.max_depth;
    base.max_mem_pages = sup.max_mem_pages;
    base.checkpoint_every = sup.checkpoint_every;
    base.pmu = opts.pmu;
    base.sim_mode = opts.sim_mode;
    base.ff_functional = opts.ff_functional;
    base.detail_window = opts.detail_window;
    if (opts.alat_entries)
        base.mach.alat_entries = *opts.alat_entries;
    if (opts.alat_assoc)
        base.mach.alat_assoc = *opts.alat_assoc;

    // Sim-layer chaos: the plan (and whether it fires) is a pure
    // function of (seed, workload, rung); it corrupts the *first*
    // attempt only — all three kinds model transient faults.
    SimFaultPlan plan;
    if (opts.sim_inject)
        plan = opts.sim_inject->simPlan(w.name, configName(cfg));

    const int max_attempts = std::max(1, sup.max_attempts);
    TimingResult r;
    SimCheckpoint ckpt;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        Memory mem;
        buildImage(w, prog, mem, opts);
        TimingOptions topts = base;
        topts.deadline_ns = deadlineFromNowMs(sup.deadline_ms);
        if (sup.checkpoint_every)
            topts.checkpoint_out = &ckpt;
        if (attempt == 0 && plan.fire) {
            switch (plan.kind) {
              case FaultKind::SimDecodeCorrupt:
                topts.corrupt_decode = true;
                break;
              case FaultKind::SimMemBitFlip:
                mem.flipBit(plan.mem_bit_sel);
                break;
              case FaultKind::SimAlatCorrupt:
                topts.corrupt_alat = plan.alat_corrupt;
                break;
              default: // SimHang
                topts.hang_at_instr = plan.hang_at_instr;
                topts.hang_ms = plan.hang_ms;
                break;
            }
        }
        r = simulate(prog, mem, topts);
        out.sim_attempts = attempt + 1;
        // Validation-aware retry: a detailed sim that "succeeds" with
        // the wrong architected result is a silent fault.
        if (r.ok && opts.expected_checksum &&
            r.ret_value != *opts.expected_checksum)
            r.fail(RunStatus::Faulted,
                   "checksum mismatch (" + std::to_string(r.ret_value) +
                       " vs " +
                       std::to_string(*opts.expected_checksum) + ")");
        if (r.ok || stopped())
            break;
        if (r.status == RunStatus::BudgetExceeded)
            break; // deterministic exhaustion: a retry cannot help
    }
    if (ckpt.valid()) {
        out.ckpt_instrs = ckpt.instrs;
        out.ckpt_bytes = ckpt.data.size();
    }

    if (r.ok) {
        out.ok = true;
        out.checksum = r.ret_value;
        out.pm = std::move(r.pm);
        out.pmu = std::move(r.pmu);
        out.sampled = r.sampled;
        out.sim_status = RunStatus::Ok;
    } else if (sup.ladder && !stopped()) {
        // Rung 2: functional-only. Execute the compiled program in
        // scheduled order through the interpreter — architected result
        // (checksum) without the timing model that failed.
        Memory mem;
        buildImage(w, prog, mem, opts);
        InterpOptions io;
        io.scheduled_order = true;
        if (sup.max_instrs)
            io.max_instrs = sup.max_instrs;
        if (sup.max_depth)
            io.max_depth = sup.max_depth;
        io.max_mem_pages = sup.max_mem_pages;
        io.deadline_ns = deadlineFromNowMs(sup.deadline_ms);
        auto fr = interpret(prog, mem, io);
        if (fr.ok) {
            out.ok = true;
            out.checksum = fr.ret_value;
            out.pm = Perfmon{};
            out.sim_rung = "functional";
            out.sim_status = RunStatus::Ok;
            out.error = std::string(configName(cfg)) +
                        " detailed sim quarantined after " +
                        std::to_string(out.sim_attempts) +
                        " attempt(s): " + r.error +
                        " (functional-only result)";
        } else {
            // Rung 3: skip with a structured record.
            out.ok = false;
            out.sim_rung = "skipped";
            out.sim_status = fr.status;
            out.error = std::string(configName(cfg)) +
                        " quarantined after " +
                        std::to_string(out.sim_attempts) +
                        " attempt(s): detailed (" + r.error +
                        "); functional (" + fr.error + ")";
        }
    } else {
        out.ok = false;
        out.sim_status = r.status;
        out.error = std::string(configName(cfg)) +
                    " simulation failed: " + r.error;
    }

    // Containment accounting for the injected fault: caught when the
    // supervisor *detected* it (retry/degrade/structured failure) or
    // validation proves the accepted result correct anyway. A fault
    // that yields an accepted wrong result would stay uncaught —
    // escaped — which is exactly what the chaos suite asserts against.
    if (plan.record >= 0) {
        const bool detected = out.sim_attempts > 1 ||
                              std::strcmp(out.sim_rung, "detailed") !=
                                  0 ||
                              !out.ok;
        const bool proven = out.ok && opts.expected_checksum &&
                            out.checksum == *opts.expected_checksum;
        if (detected || proven)
            opts.sim_inject->markCaught(plan.record);
    }
}

} // namespace

ConfigRun
runConfig(const Workload &w, Config cfg, const RunOptions &opts)
{
    ConfigRun out;
    out.config = cfg;

    // Coarse experiment phases for the trace timeline ("" = tracing
    // off; composing the label is then skipped too).
    auto phase_label = [&](const char *phase) -> std::string {
        if (!TraceRecorder::global().enabled())
            return {};
        return std::string(phase) + " " + w.name + " [" +
               configName(cfg) + "]";
    };
    TraceSpan run_span("experiment", phase_label("run"));

    std::string err;
    std::unique_ptr<Program> src;
    {
        TraceSpan span("experiment.phase", phase_label("build+profile"));
        src = buildProfiled(w, opts, &err);
    }
    if (!src) {
        out.error = err;
        out.sim_status = RunStatus::Faulted;
        return out;
    }

    CompileOptions copts = CompileOptions::forConfig(cfg);
    copts.jobs = opts.jobs;
    // --max-mem-pages covers compile-side arenas like sim heap pages.
    copts.max_arena_pages = opts.supervision.max_mem_pages;
    if (opts.tweak)
        opts.tweak(copts);
    Compiled c;
    try {
        c = compileProgram(*src, copts);
    } catch (const ArenaBudgetExceeded &e) {
        out.ok = false;
        out.sim_status = RunStatus::BudgetExceeded;
        out.error = std::string(configName(cfg)) +
                    " compilation exceeded the arena budget: " + e.what();
        return out;
    }

    out.fallback = c.fallback;
    out.stats = c.stats;
    out.pipeline = c.pipeline;
    out.instrs_source = c.instrs_source;
    out.instrs_final = c.instrs_final;

    TraceSpan sim_span("experiment.phase", phase_label("simulate"));
    if (opts.supervise) {
        superviseSim(w, cfg, opts, *c.prog, out);
        out.prog = std::shared_ptr<Program>(std::move(c.prog));
        return out;
    }

    Memory mem;
    mem.initFromProgram(*c.prog);
    w.write_input(*c.prog, mem, opts.run_input);
    TimingOptions topts;
    topts.spec_model = opts.spec_model;
    topts.pmu = opts.pmu;
    topts.sim_mode = opts.sim_mode;
    topts.ff_functional = opts.ff_functional;
    topts.detail_window = opts.detail_window;
    if (opts.alat_entries)
        topts.mach.alat_entries = *opts.alat_entries;
    if (opts.alat_assoc)
        topts.mach.alat_assoc = *opts.alat_assoc;
    auto r = simulate(*c.prog, mem, topts);
    out.sim_attempts = 1;
    if (!r.ok) {
        out.sim_status = r.status;
        out.error = std::string(configName(cfg)) +
                    " simulation failed: " + r.error;
        return out;
    }
    out.ok = true;
    out.checksum = r.ret_value;
    out.pm = std::move(r.pm);
    out.pmu = std::move(r.pmu);
    out.sampled = r.sampled;
    out.prog = std::shared_ptr<Program>(std::move(c.prog));
    return out;
}

std::vector<WorkloadRuns>
runSuite(const std::vector<Config> &configs, const RunOptions &opts,
         const std::function<void(const WorkloadRuns &)> &progress)
{
    const std::vector<Workload> &all = allWorkloads();
    // --only substring filters (suite order is preserved).
    std::vector<const Workload *> suite;
    for (const Workload &w : all) {
        bool take = opts.only.empty();
        for (const std::string &pat : opts.only)
            if (w.name.find(pat) != std::string::npos)
                take = true;
        if (take)
            suite.push_back(&w);
    }

    std::vector<WorkloadRuns> out(suite.size());
    // Workloads fan out over the pool; results land in suite order, so
    // the report is byte-identical to a serial run. Progress feedback
    // streams per workload when serial, after the join when parallel.
    parallelFor(opts.jobs, static_cast<int>(suite.size()), [&](int i) {
        if (stopped()) {
            out[i].name = suite[i]->name;
            out[i].error = "interrupted by stop request";
            return;
        }
        out[i] = runWorkload(*suite[i], configs, opts);
        if (progress && opts.jobs <= 1)
            progress(out[i]);
    });
    if (progress && opts.jobs > 1)
        for (const WorkloadRuns &r : out)
            progress(r);
    return out;
}

WorkloadRuns
runWorkload(const Workload &w, const std::vector<Config> &configs,
            const RunOptions &opts)
{
    WorkloadRuns out;
    out.name = w.name;

    if (stopped()) {
        out.error = "interrupted by stop request";
        return out;
    }

    // Source truth: functional run of the unoptimized program on the
    // measurement input.
    {
        TraceSpan span("experiment.phase",
                       TraceRecorder::global().enabled()
                           ? "source-run " + w.name
                           : std::string());
        auto prog = w.build();
        prog->layoutData();
        Memory mem;
        mem.initFromProgram(*prog);
        w.write_input(*prog, mem, opts.run_input);
        auto r = interpret(*prog, mem);
        if (!r.ok) {
            // Recoverable: the harness reports the workload as failed
            // instead of killing the whole suite.
            out.error = "source program failed: " + r.error;
            epic_warn(w.name, ": ", out.error);
            return out;
        }
        out.source_checksum = r.ret_value;
    }

    // Supervised runs validate every accepted result against the
    // source truth (silent-corruption detection drives retry).
    RunOptions wopts = opts;
    if (opts.supervise)
        wopts.expected_checksum = out.source_checksum;

    // Configurations are independent (each builds its own profiled
    // source); fan them out, then merge and report in `configs` order
    // so the aggregate — and even the warning stream — is identical to
    // a serial run.
    std::vector<ConfigRun> results(configs.size());
    parallelFor(
        opts.jobs, static_cast<int>(configs.size()), [&](int i) {
            const Config cfg = configs[i];
            const std::string key =
                opts.manifest ? manifestKey(w, cfg, opts)
                              : std::string();
            if (opts.manifest && opts.resume) {
                if (const std::string *rec = opts.manifest->find(key)) {
                    ConfigRun r;
                    r.config = cfg;
                    r.resumed = true;
                    r.record_json = *rec;
                    r.ok = recordSaysOk(*rec);
                    r.checksum = recordChecksum(*rec);
                    if (!r.ok)
                        r.error = "failed in a previous run (resumed "
                                  "manifest record)";
                    results[i] = std::move(r);
                    return;
                }
            }
            if (stopped()) {
                results[i].config = cfg;
                results[i].sim_status = RunStatus::Deadline;
                results[i].error = "interrupted by stop request";
                return;
            }
            results[i] = runConfig(w, cfg, wopts);
            // Durable completion record — appended (and fsync'd) the
            // moment the task finishes, so a later kill -9 cannot lose
            // it. Results produced after a stop request are not
            // recorded: they may be partial (Deadline) and will simply
            // re-run on resume.
            if (opts.manifest && !(stopped() && !results[i].ok))
                opts.manifest->record(
                    key, runRecordJson(w.name, out.source_checksum,
                                       results[i]));
        });

    out.all_match = true;
    for (size_t i = 0; i < configs.size(); ++i) {
        const Config cfg = configs[i];
        ConfigRun &r = results[i];
        out.fallback.merge(r.fallback);
        out.pipeline.merge(r.pipeline);
        if (!r.ok) {
            epic_warn(w.name, " [", configName(cfg), "]: ", r.error);
            out.all_match = false;
        } else if (r.checksum != out.source_checksum) {
            epic_warn(w.name, " [", configName(cfg),
                      "]: checksum mismatch (", r.checksum, " vs ",
                      out.source_checksum, ")");
            out.all_match = false;
        }
        out.by_config.emplace(cfg, std::move(r));
    }
    return out;
}

} // namespace epic
