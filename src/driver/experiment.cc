#include "driver/experiment.h"

#include "support/logging.h"
#include "support/telemetry/trace.h"
#include "support/threadpool.h"

namespace epic {

const std::vector<Config> &
standardConfigs()
{
    static const std::vector<Config> kConfigs = {
        Config::Gcc, Config::ONS, Config::IlpNs, Config::IlpCs};
    return kConfigs;
}

namespace {

/** Build + profile a fresh source program for a workload. */
std::unique_ptr<Program>
buildProfiled(const Workload &w, const RunOptions &opts,
              std::string *error)
{
    auto prog = w.build();
    prog->layoutData();
    Memory mem;
    mem.initFromProgram(*prog);
    w.write_input(*prog, mem, opts.profile_input);
    auto prof = profileRun(*prog, mem);
    if (!prof.ok) {
        *error = "profile run failed: " + prof.error;
        return nullptr;
    }
    return prog;
}

} // namespace

ConfigRun
runConfig(const Workload &w, Config cfg, const RunOptions &opts)
{
    ConfigRun out;
    out.config = cfg;

    // Coarse experiment phases for the trace timeline ("" = tracing
    // off; composing the label is then skipped too).
    auto phase_label = [&](const char *phase) -> std::string {
        if (!TraceRecorder::global().enabled())
            return {};
        return std::string(phase) + " " + w.name + " [" +
               configName(cfg) + "]";
    };
    TraceSpan run_span("experiment", phase_label("run"));

    std::string err;
    std::unique_ptr<Program> src;
    {
        TraceSpan span("experiment.phase", phase_label("build+profile"));
        src = buildProfiled(w, opts, &err);
    }
    if (!src) {
        out.error = err;
        return out;
    }

    CompileOptions copts = CompileOptions::forConfig(cfg);
    copts.jobs = opts.jobs;
    if (opts.tweak)
        opts.tweak(copts);
    Compiled c = compileProgram(*src, copts);

    out.fallback = c.fallback;
    out.stats = c.stats;
    out.pipeline = c.pipeline;
    out.instrs_source = c.instrs_source;
    out.instrs_final = c.instrs_final;

    TraceSpan sim_span("experiment.phase", phase_label("simulate"));
    Memory mem;
    mem.initFromProgram(*c.prog);
    w.write_input(*c.prog, mem, opts.run_input);
    TimingOptions topts;
    topts.spec_model = opts.spec_model;
    auto r = simulate(*c.prog, mem, topts);
    if (!r.ok) {
        out.error = std::string(configName(cfg)) +
                    " simulation failed: " + r.error;
        return out;
    }
    out.ok = true;
    out.checksum = r.ret_value;
    out.pm = std::move(r.pm);
    out.prog = std::shared_ptr<Program>(std::move(c.prog));
    return out;
}

std::vector<WorkloadRuns>
runSuite(const std::vector<Config> &configs, const RunOptions &opts,
         const std::function<void(const WorkloadRuns &)> &progress)
{
    const std::vector<Workload> &suite = allWorkloads();
    std::vector<WorkloadRuns> out(suite.size());
    // Workloads fan out over the pool; results land in suite order, so
    // the report is byte-identical to a serial run. Progress feedback
    // streams per workload when serial, after the join when parallel.
    parallelFor(opts.jobs, static_cast<int>(suite.size()), [&](int i) {
        out[i] = runWorkload(suite[i], configs, opts);
        if (progress && opts.jobs <= 1)
            progress(out[i]);
    });
    if (progress && opts.jobs > 1)
        for (const WorkloadRuns &r : out)
            progress(r);
    return out;
}

WorkloadRuns
runWorkload(const Workload &w, const std::vector<Config> &configs,
            const RunOptions &opts)
{
    WorkloadRuns out;
    out.name = w.name;

    // Source truth: functional run of the unoptimized program on the
    // measurement input.
    {
        TraceSpan span("experiment.phase",
                       TraceRecorder::global().enabled()
                           ? "source-run " + w.name
                           : std::string());
        auto prog = w.build();
        prog->layoutData();
        Memory mem;
        mem.initFromProgram(*prog);
        w.write_input(*prog, mem, opts.run_input);
        auto r = interpret(*prog, mem);
        if (!r.ok) {
            // Recoverable: the harness reports the workload as failed
            // instead of killing the whole suite.
            out.error = "source program failed: " + r.error;
            epic_warn(w.name, ": ", out.error);
            return out;
        }
        out.source_checksum = r.ret_value;
    }

    // Configurations are independent (each builds its own profiled
    // source); fan them out, then merge and report in `configs` order
    // so the aggregate — and even the warning stream — is identical to
    // a serial run.
    std::vector<ConfigRun> results(configs.size());
    parallelFor(opts.jobs, static_cast<int>(configs.size()),
                [&](int i) { results[i] = runConfig(w, configs[i], opts); });

    out.all_match = true;
    for (size_t i = 0; i < configs.size(); ++i) {
        const Config cfg = configs[i];
        ConfigRun &r = results[i];
        out.fallback.merge(r.fallback);
        out.pipeline.merge(r.pipeline);
        if (!r.ok) {
            epic_warn(w.name, " [", configName(cfg), "]: ", r.error);
            out.all_match = false;
        } else if (r.checksum != out.source_checksum) {
            epic_warn(w.name, " [", configName(cfg),
                      "]: checksum mismatch (", r.checksum, " vs ",
                      out.source_checksum, ")");
            out.all_match = false;
        }
        out.by_config.emplace(cfg, std::move(r));
    }
    return out;
}

} // namespace epic
