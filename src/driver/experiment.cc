#include "driver/experiment.h"

#include "support/logging.h"

namespace epic {

const std::vector<Config> &
standardConfigs()
{
    static const std::vector<Config> kConfigs = {
        Config::Gcc, Config::ONS, Config::IlpNs, Config::IlpCs};
    return kConfigs;
}

namespace {

/** Build + profile a fresh source program for a workload. */
std::unique_ptr<Program>
buildProfiled(const Workload &w, const RunOptions &opts,
              std::string *error)
{
    auto prog = w.build();
    prog->layoutData();
    Memory mem;
    mem.initFromProgram(*prog);
    w.write_input(*prog, mem, opts.profile_input);
    auto prof = profileRun(*prog, mem);
    if (!prof.ok) {
        *error = "profile run failed: " + prof.error;
        return nullptr;
    }
    return prog;
}

} // namespace

ConfigRun
runConfig(const Workload &w, Config cfg, const RunOptions &opts)
{
    ConfigRun out;
    out.config = cfg;

    std::string err;
    auto src = buildProfiled(w, opts, &err);
    if (!src) {
        out.error = err;
        return out;
    }

    CompileOptions copts = CompileOptions::forConfig(cfg);
    if (opts.tweak)
        opts.tweak(copts);
    Compiled c = compileProgram(*src, copts);

    out.fallback = c.fallback;
    out.inl = c.inl;
    out.sb = c.sb;
    out.hb = c.hb;
    out.peel = c.peel;
    out.spec = c.spec;
    out.ra = c.ra;
    out.sched = c.sched;
    out.instrs_source = c.instrs_source;
    out.instrs_after_classical = c.instrs_after_classical;
    out.instrs_after_regions = c.instrs_after_regions;
    out.instrs_final = c.instrs_final;

    Memory mem;
    mem.initFromProgram(*c.prog);
    w.write_input(*c.prog, mem, opts.run_input);
    TimingOptions topts;
    topts.spec_model = opts.spec_model;
    auto r = simulate(*c.prog, mem, topts);
    if (!r.ok) {
        out.error = std::string(configName(cfg)) +
                    " simulation failed: " + r.error;
        return out;
    }
    out.ok = true;
    out.checksum = r.ret_value;
    out.pm = std::move(r.pm);
    out.prog = std::shared_ptr<Program>(std::move(c.prog));
    return out;
}

std::vector<WorkloadRuns>
runSuite(const std::vector<Config> &configs, const RunOptions &opts,
         const std::function<void(const WorkloadRuns &)> &progress)
{
    std::vector<WorkloadRuns> out;
    for (const Workload &w : allWorkloads()) {
        out.push_back(runWorkload(w, configs, opts));
        if (progress)
            progress(out.back());
    }
    return out;
}

WorkloadRuns
runWorkload(const Workload &w, const std::vector<Config> &configs,
            const RunOptions &opts)
{
    WorkloadRuns out;
    out.name = w.name;

    // Source truth: functional run of the unoptimized program on the
    // measurement input.
    {
        auto prog = w.build();
        prog->layoutData();
        Memory mem;
        mem.initFromProgram(*prog);
        w.write_input(*prog, mem, opts.run_input);
        auto r = interpret(*prog, mem);
        if (!r.ok) {
            // Recoverable: the harness reports the workload as failed
            // instead of killing the whole suite.
            out.error = "source program failed: " + r.error;
            epic_warn(w.name, ": ", out.error);
            return out;
        }
        out.source_checksum = r.ret_value;
    }

    out.all_match = true;
    for (Config cfg : configs) {
        ConfigRun r = runConfig(w, cfg, opts);
        out.fallback.merge(r.fallback);
        if (!r.ok) {
            epic_warn(w.name, " [", configName(cfg), "]: ", r.error);
            out.all_match = false;
        } else if (r.checksum != out.source_checksum) {
            epic_warn(w.name, " [", configName(cfg),
                      "]: checksum mismatch (", r.checksum, " vs ",
                      out.source_checksum, ")");
            out.all_match = false;
        }
        out.by_config.emplace(cfg, std::move(r));
    }
    return out;
}

} // namespace epic
