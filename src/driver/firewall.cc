#include "driver/firewall.h"

#include <chrono>
#include <functional>
#include <sstream>

#include "driver/compiler.h"
#include "ir/verifier.h"
#include "support/error.h"
#include "support/faultinject.h"
#include "support/logging.h"
#include "support/telemetry/trace.h"

namespace epic {

const char *
configName(Config c)
{
    switch (c) {
      case Config::Gcc: return "GCC";
      case Config::ONS: return "O-NS";
      case Config::IlpNs: return "ILP-NS";
      case Config::IlpCs: return "ILP-CS";
      case Config::IlpCsDs: return "ILP-CS-DS";
    }
    return "?";
}

bool
degradeConfig(Config c, Config *lower)
{
    switch (c) {
      case Config::IlpCsDs: *lower = Config::IlpCs; return true;
      case Config::IlpCs: *lower = Config::IlpNs; return true;
      case Config::IlpNs: *lower = Config::ONS; return true;
      case Config::ONS: *lower = Config::Gcc; return true;
      case Config::Gcc: return false;
    }
    return false;
}

std::string
FallbackEvent::str() const
{
    std::ostringstream os;
    os << function << ": " << configName(attempted) << " rejected at "
       << failing_pass;
    if (error_count > 1)
        os << " (" << error_count << " errors)";
    os << ": " << error << " -> landed " << configName(final_config);
    if (fault_injected)
        os << " [fault injected]";
    return os.str();
}

void
FallbackReport::merge(const FallbackReport &o)
{
    events.insert(events.end(), o.events.begin(), o.events.end());
    functions_total += o.functions_total;
    functions_degraded += o.functions_degraded;
    clean_retries += o.clean_retries;
    faults_injected += o.faults_injected;
    faults_caught += o.faults_caught;
}

std::string
FallbackReport::str() const
{
    if (clean())
        return "";
    std::ostringstream os;
    os << "compilation firewall: " << events.size() << " fallback(s), "
       << functions_degraded << "/" << functions_total
       << " function(s) degraded";
    if (faults_injected) {
        os << "; " << faults_injected << " fault(s) injected, "
           << faults_caught << " caught";
        if (clean_retries)
            os << ", " << clean_retries << " clean floor retr"
               << (clean_retries == 1 ? "y" : "ies");
    }
    os << "\n";
    for (const FallbackEvent &e : events)
        os << "  " << e.str() << "\n";
    return os.str();
}

namespace {

/** Milliseconds elapsed since `t0` on the steady clock. */
double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Trace-event args for a pass span ("" when tracing is off). */
std::string
passTraceArgs(const std::string &fname, Config rung)
{
    if (!TraceRecorder::global().enabled())
        return {};
    return "{\"function\":\"" + jsonEscape(fname) + "\",\"rung\":\"" +
           configName(rung) + "\"}";
}

} // namespace

FunctionOutcome
compileFunctionFirewalled(Program &prog, int fid,
                          const CompileOptions &opts,
                          const AliasAnalysis &aa, FallbackReport &report)
{
    Function *orig = prog.func(fid);
    epic_assert(orig, "firewall: no function with id ", fid);
    const std::string fname = orig->name;
    const Config start =
        (orig->attr & kFuncLibrary) ? Config::Gcc : opts.config;
    const int budget =
        std::max(opts.firewall.min_growth_instrs,
                 static_cast<int>(opts.firewall.growth_budget *
                                  orig->staticInstrCount()));

    report.functions_total++;
    const size_t first_event = report.events.size();

    PipelineStats pipe; ///< survives rollbacks: attempts cost real time

    // Per-function arena budget: supervision pages are 16K, matching
    // the simulator's heap accounting unit.
    const uint64_t arena_budget = opts.max_arena_pages * (uint64_t{16} << 10);
    const bool recycle =
        opts.firewall.snapshot == SnapshotStrategy::kWatermark;
    // Arena activity of abandoned deep clones (their arenas die with
    // them); the recycling strategy accumulates inside `work` instead.
    ArenaCounters abandoned_arena;

    std::unique_ptr<Function> work;
    Config rung = start;
    bool clean_floor = false; ///< final Gcc attempt, injector disarmed
    while (true) {
        FaultInjector *inj = clean_floor ? nullptr : opts.firewall.inject;
        if (work && recycle) {
            // Watermark strategy: discard the failed attempt with one
            // O(1) arena rollback and re-copy the source into the
            // retained chunks — a warm retry performs no chunk mallocs.
            orig->cloneInto(*work);
        } else {
            if (work)
                abandoned_arena += work->arena().counters();
            work = orig->clone(arena_budget);
        }
        // Fresh manager per attempt: rollback and fallback-ladder
        // re-entry start cold by construction, never from stale caches.
        AnalysisManager am(*work, &aa, opts.analysis_mode);
        FunctionOutcome r;
        std::vector<const PassDesc *> passes = buildPipeline(rung, opts);

        std::string fail_pass, fail_err;
        int fail_count = 0;
        bool injected_here = false;
        std::vector<int> live_faults; ///< fired, not yet gated
        bool ok = true;
        try {
            for (const PassDesc *p : passes) {
                const int before = work->staticInstrCount();
                const AnalysisCounters actr0 = am.counters();
                am.beginPass(p->name);
                const auto t0 = std::chrono::steady_clock::now();
                {
                    TraceSpan span("compile.pass", p->name,
                                   passTraceArgs(fname, rung));
                    p->run(*work, rung, opts, am, r.stats);
                }
                PassStat &ps = pipe.at(p->name, rung);
                ps.runs++;
                ps.run_ms += msSince(t0);
                ps.instr_delta += work->staticInstrCount() - before;
                bool fault_here = false;
                if (inj) {
                    int idx = inj->inject(*work, p->name,
                                          configName(rung), &am);
                    if (idx >= 0) {
                        live_faults.push_back(idx);
                        injected_here = true;
                        fault_here = true;
                        report.faults_injected++;
                    }
                }
                // Pass boundary: trust the declared preserves set —
                // unless a fault just mutated the IR behind the pass's
                // back, in which case nothing cached can be trusted
                // (and the stale checker must not blame the pass).
                if (fault_here)
                    am.invalidateAll();
                else
                    am.invalidateAllExcept(p->preserves);
                ps.analysis += am.counters() - actr0;
                const int sz = work->staticInstrCount();
                if (p->growth_gate && sz > budget) {
                    std::ostringstream os;
                    os << "growth budget overrun: " << sz << " instrs > "
                       << budget << " budget";
                    throw CompileError(p->name, os.str());
                }
                if (p->verify_gate) {
                    const auto v0 = std::chrono::steady_clock::now();
                    std::vector<std::string> errs;
                    {
                        TraceSpan span("compile.verify", p->name,
                                       passTraceArgs(fname, rung));
                        errs = verifyFunction(*work);
                    }
                    ps.verify_ms += msSince(v0);
                    if (!errs.empty()) {
                        ok = false;
                        fail_pass = p->name;
                        fail_err = errs.front();
                        fail_count = static_cast<int>(errs.size());
                        break;
                    }
                }
            }
        } catch (const InjectedFault &e) {
            ok = false;
            injected_here = true;
            report.faults_injected++;
            report.faults_caught++;
            fail_pass = e.pass();
            fail_err = e.what();
            fail_count = 1;
        } catch (const CompileError &e) {
            ok = false;
            fail_pass = e.pass();
            fail_err = e.what();
            fail_count = 1;
        }

        if (ok) {
            // Commit: the verified clone replaces the source function.
            r.stats.arena += abandoned_arena;
            r.stats.arena += work->arena().counters();
            r.stats.arena += am.arenaCounters();
            prog.funcs[fid] = std::move(work);
            for (size_t i = first_event; i < report.events.size(); ++i)
                report.events[i].final_config = rung;
            if (rung != start)
                report.functions_degraded++;
            r.landed = rung;
            r.pipeline = std::move(pipe);
            return r;
        }

        // Roll back. Faults that fired on this attempt die with the
        // abandoned clone: absorbed.
        if (inj) {
            for (int idx : live_faults) {
                inj->markCaught(idx);
                report.faults_caught++;
            }
        }

        if (!opts.firewall.enabled) {
            epic_panic("IR verification failed compiling ", fname, " [",
                       configName(rung), "] at ", fail_pass, ": ",
                       fail_err, " (", fail_count,
                       " error(s); firewall disabled)");
        }

        FallbackEvent ev;
        ev.function = fname;
        ev.attempted = rung;
        ev.failing_pass = fail_pass;
        ev.error = fail_err;
        ev.error_count = fail_count;
        ev.fault_injected = injected_here;
        ev.final_config = Config::Gcc; // backfilled on commit
        report.events.push_back(std::move(ev));

        Config lower;
        if (degradeConfig(rung, &lower)) {
            rung = lower;
        } else if (!clean_floor && opts.firewall.inject) {
            // Injection corrupted even the Gcc floor; one last attempt
            // with the injector disarmed. Real compilations (no
            // injector) never reach this.
            clean_floor = true;
            report.clean_retries++;
        } else {
            epic_panic("compilation firewall exhausted for ", fname,
                       ": Gcc floor failed at ", fail_pass, ": ",
                       fail_err);
        }
    }
}

} // namespace epic
