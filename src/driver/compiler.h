/**
 * @file
 * Compilation driver: the paper's four code-generation configurations.
 *
 *  - Gcc:    classical optimization only, no inlining, no interprocedural
 *            pointer analysis, one-bundle issue groups (GCC 3.2 -O3
 *            behaviour on IA-64 as characterized in §2.1).
 *  - ONS:    "O-NS" — IMPACT classical optimization + profile-guided
 *            inlining + interprocedural analysis; no predication, no
 *            speculation (the paper's baseline).
 *  - IlpNs:  adds the structural ILP transforms: superblock formation
 *            with tail duplication, hyperblock if-conversion, loop
 *            peeling/unrolling — but no control speculation.
 *  - IlpCs:  adds control speculation and predicate promotion.
 *
 * Functions marked kFuncLibrary always get the Gcc treatment (the
 * paper's gcc-compiled system libraries in Figure 10).
 *
 * Every function is compiled through the compilation firewall
 * (driver/firewall.h): passes run on a clone behind per-pass verifier
 * gates, and a function whose compilation fails at some configuration
 * degrades down the IlpCs -> IlpNs -> ONS -> Gcc ladder by itself
 * instead of killing the experiment. Compiled::fallback records what
 * (if anything) degraded.
 */
#ifndef EPIC_DRIVER_COMPILER_H
#define EPIC_DRIVER_COMPILER_H

#include <memory>

#include "analysis/manager.h"
#include "driver/config.h"
#include "driver/firewall.h"
#include "ilp/hyperblock.h"
#include "ilp/layout.h"
#include "ilp/peel.h"
#include "ilp/speculate.h"
#include "ilp/superblock.h"
#include "mach/machine.h"
#include "opt/classical.h"
#include "opt/inline.h"
#include "sched/listsched.h"
#include "sched/regalloc.h"

namespace epic {

/** All knobs, pre-populated per Config but overridable for ablations. */
struct CompileOptions
{
    Config config = Config::IlpCs;
    MachineConfig mach;

    InlineOptions inline_opts;
    SuperblockOptions sb_opts;
    HyperblockOptions hb_opts;
    PeelOptions peel_opts;
    SpecOptions spec_opts;
    LayoutOptions layout_opts;

    bool enable_inline = true;     ///< per-config default applied
    bool enable_pointer_analysis = true;
    bool enable_peel = true;
    bool enable_unroll = true;

    /// Worker threads for the per-function firewalled pipeline.
    /// Functions are independent after inlining + alias analysis;
    /// results commit indexed by function id, so any jobs value
    /// produces bit-identical output to jobs = 1.
    int jobs = 1;

    /// Analysis-cache policy (Cached / ForceRecompute / StaleCheck).
    /// Defaults to EPICLAB_ANALYSIS_MODE; --analysis-mode overrides.
    AnalysisMode analysis_mode = envAnalysisMode();

    /// Hard budget on each function's IR arena, in the supervision
    /// layer's 16K pages (0 = unlimited). Wired from --max-mem-pages so
    /// the flag covers compile-side memory exactly like sim heap pages:
    /// exhaustion surfaces as RunStatus::BudgetExceeded, never a
    /// bad_alloc abort.
    uint64_t max_arena_pages = 0;

    FirewallOptions firewall;

    /** Defaults for a configuration. */
    static CompileOptions forConfig(Config c);
};

/** Everything produced by a compilation. */
struct Compiled
{
    std::unique_ptr<Program> prog;
    Config config;

    /// Phase statistics (for the §3.2 code-growth experiments etc.).
    CompileStats stats;
    /// Per-(pass, rung) instrumentation across every function.
    PipelineStats pipeline;
    LayoutStats layout;

    /// What the compilation firewall had to degrade (clean() if nothing).
    FallbackReport fallback;

    int instrs_source = 0;      ///< before anything
    int instrs_after_inline = 0;
    int instrs_final = 0;
};

/**
 * Compile a profiled source program under a configuration. The source
 * is cloned; profile annotations travel with the clone.
 */
Compiled compileProgram(const Program &source, const CompileOptions &opts);

/** Convenience: compile with per-config defaults. */
Compiled compileProgram(const Program &source, Config config);

} // namespace epic

#endif // EPIC_DRIVER_COMPILER_H
