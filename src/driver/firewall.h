/**
 * @file
 * Compilation firewall: transactional per-function compilation with
 * graceful degradation.
 *
 * `verifyOrDie` turns one broken function into a dead experiment. A
 * region-based ILP compiler headed for production has to contain such
 * failures instead: each function is compiled on a *clone*, the IR is
 * re-verified after every pass (and optionally corrupted between passes
 * by the fault-injection engine, support/faultinject.h), and the clone
 * is committed back into the program only when every gate passed. On a
 * verifier rejection, a recoverable CompileError (e.g. the register
 * allocator running out of a register class), or a code-growth budget
 * overrun, the function alone walks the degradation ladder
 *
 *     IlpCs -> IlpNs -> ONS -> Gcc
 *
 * and each abandoned rung is recorded as a FallbackEvent. The
 * experiment harness aggregates the resulting FallbackReport and the
 * bench binaries print it, so a degraded run is visible — but still a
 * run, with architected semantics intact.
 */
#ifndef EPIC_DRIVER_FIREWALL_H
#define EPIC_DRIVER_FIREWALL_H

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/alias.h"
#include "driver/config.h"
#include "driver/pipeline.h"

namespace epic {

class FaultInjector;
struct CompileOptions;

/** One abandoned rung of one function's compilation. */
struct FallbackEvent
{
    std::string function;
    Config attempted = Config::IlpCs; ///< rung that failed
    std::string failing_pass;         ///< gate that rejected the IR
    std::string error;                ///< first verifier error / exception
    int error_count = 1;              ///< total errors at the gate
    bool fault_injected = false;      ///< an injected fault was live here
    Config final_config = Config::Gcc; ///< rung the function landed on

    /** One-line rendering for reports. */
    std::string str() const;
};

/** Aggregated firewall outcome for one compilation (or one suite). */
struct FallbackReport
{
    std::vector<FallbackEvent> events;
    int functions_total = 0;
    int functions_degraded = 0; ///< landed below their requested config
    int clean_retries = 0;      ///< Gcc floor re-runs with injection off
    int faults_injected = 0;
    int faults_caught = 0; ///< rejected at a gate / absorbed by fallback

    bool clean() const { return events.empty(); }
    void merge(const FallbackReport &o);
    /** Multi-line printable summary (empty string when clean). */
    std::string str() const;
};

/**
 * How the firewall snapshots per-attempt transactional state
 * (DESIGN.md §16).
 *
 *  - kWatermark (default): one work clone per function, *recycled*
 *    across rung attempts — abandoning a failed attempt is one O(1)
 *    arena watermark rollback, and the retained chunks make the retry's
 *    re-clone malloc-free. The committed IR is bit-identical to
 *    kDeepClone's (the equivalence suite asserts it under fault
 *    injection).
 *  - kDeepClone: a fresh clone (fresh arena) per attempt — the legacy
 *    strategy, kept as the A/B reference and debugging aid.
 */
enum class SnapshotStrategy : uint8_t {
    kDeepClone,
    kWatermark,
};

/** Firewall knobs, part of CompileOptions. */
struct FirewallOptions
{
    /// When false, any gate failure is fatal (the legacy verifyOrDie
    /// behaviour) instead of degrading the function.
    bool enabled = true;
    /// Per-attempt snapshot strategy (see SnapshotStrategy).
    SnapshotStrategy snapshot = SnapshotStrategy::kWatermark;
    /// Budget overrun: a rung fails when a pass grows the function past
    /// max(min_growth_instrs, growth_budget * original size).
    double growth_budget = 64.0;
    int min_growth_instrs = 4096;
    /// Optional fault-injection engine (not owned). Corrupts the IR at
    /// pass boundaries; the firewall marks which faults its gates
    /// caught.
    FaultInjector *inject = nullptr;
    /// Re-verify the whole program after the per-function pipeline.
    /// Redundant (every function already passed a per-pass gate) and
    /// off by default; a debug flag for chasing firewall bugs.
    bool paranoid = false;
};

/** Per-function compilation outcome. */
struct FunctionOutcome
{
    Config landed = Config::Gcc;
    /// Transform statistics of the committed (landed) attempt.
    CompileStats stats;
    /// Per-pass instrumentation across *all* attempts, abandoned rungs
    /// included — compile time spent is compile time spent.
    PipelineStats pipeline;
};

/**
 * Compile prog.funcs[fid] transactionally under `opts`, committing the
 * first rung whose every pass verifies and appending any abandoned
 * rungs to `report`. Library functions start at the Gcc rung (the
 * paper's gcc-compiled system libraries). Panics only if even the Gcc
 * floor produces unverifiable code with no fault injected — a genuine
 * EpicLab bug.
 */
FunctionOutcome compileFunctionFirewalled(Program &prog, int fid,
                                          const CompileOptions &opts,
                                          const AliasAnalysis &aa,
                                          FallbackReport &report);

} // namespace epic

#endif // EPIC_DRIVER_FIREWALL_H
