#include "sched/dag.h"

#include <algorithm>

#include "analysis/liveness.h"
#include "support/logging.h"

namespace epic {

namespace {

/**
 * Guard used for disjointness filtering. An unc-type compare writes its
 * destinations even when its guard is false, so for dependence purposes
 * it behaves as unconditional.
 */
Reg
effectiveGuard(const Instruction &inst)
{
    if ((inst.op == Opcode::CMP || inst.op == Opcode::CMPI) &&
        inst.ctype == CmpType::Unc) {
        return kPrTrue;
    }
    return inst.guard;
}

bool
isCmpOp(const Instruction &inst)
{
    return inst.op == Opcode::CMP || inst.op == Opcode::CMPI ||
           inst.op == Opcode::FCMP;
}

} // namespace

void
DepDag::addEdge(int from, int to, int lat, DepKind kind)
{
    // Coalesce: keep only the strongest (max-latency) edge per pair.
    for (int ei : succs_[from]) {
        if (edges_[ei].to == to) {
            edges_[ei].latency = std::max(edges_[ei].latency, lat);
            return;
        }
    }
    int id = static_cast<int>(edges_.size());
    edges_.push_back(DagEdge{from, to, lat, kind});
    succs_[from].push_back(id);
    preds_[to].push_back(id);
}

DepDag::DepDag(const Function &f, const BasicBlock &b,
               const AliasAnalysis &aa, const MachineConfig &mach,
               const PredRelations &prel)
    : n_(static_cast<int>(b.instrs.size()))
{
    preds_.resize(n_);
    succs_.resize(n_);
    heights_.assign(n_, 0);

    auto disjoint = [&](int i, int j) {
        Reg gi = effectiveGuard(b.instrs[i]);
        Reg gj = effectiveGuard(b.instrs[j]);
        if (gi == kPrTrue || gj == kPrTrue)
            return false;
        return prel.disjointAt(i, gi, gj) && prel.disjointAt(j, gi, gj);
    };

    std::vector<Reg> defs_i, uses_i, defs_j, uses_j;
    int last_branch = -1;

    for (int i = 0; i < n_; ++i) {
        const Instruction &ii = b.instrs[i];
        instrDefs(ii, defs_i);
        instrUses(ii, uses_i);

        for (int j = i - 1; j >= 0; --j) {
            const Instruction &ij = b.instrs[j];
            instrDefs(ij, defs_j);
            instrUses(ij, uses_j);
            bool dj = disjoint(i, j);

            // Register RAW: j defines something i reads.
            for (const Reg &d : defs_j) {
                bool reads = false;
                bool guard_read = false;
                for (const Reg &u : uses_i) {
                    if (u == d) {
                        reads = true;
                        if (u == ii.guard && u.cls == RegClass::Pr)
                            guard_read = true;
                    }
                }
                if (!reads)
                    continue;
                // Flow is impossible between disjointly-guarded ops, but
                // only when the *producer* is guarded (a squashed
                // producer leaves the old value).
                if (dj && effectiveGuard(ij) != kPrTrue)
                    continue;
                int lat = opLatency(mach, ij.op);
                // chk.a validates a value the paired ld.a already
                // delivered: on the scheduler's hit assumption the
                // consumer may share the check's issue group (a miss is
                // charged dynamically as ALAT recovery, not planned
                // here).
                if (ij.op == Opcode::CHK_A)
                    lat = 0;
                // IA-64 special case: a compare may feed the guard of a
                // branch in the same issue group.
                bool guard_only = guard_read;
                for (const Operand &o : ii.srcs)
                    if (o.isReg() && o.reg == d)
                        guard_only = false;
                if (isCmpOp(ij) && ii.isBranch() && guard_only)
                    lat = 0;
                addEdge(j, i, lat, DepKind::RegRaw);
            }

            // Register WAR: j reads something i writes.
            for (const Reg &d : defs_i) {
                for (const Reg &u : uses_j) {
                    if (u == d) {
                        if (!dj)
                            addEdge(j, i, 0, DepKind::RegWar);
                    }
                }
            }

            // Register WAW.
            for (const Reg &d : defs_i) {
                for (const Reg &d2 : defs_j) {
                    if (d == d2 && !dj)
                        addEdge(j, i, 1, DepKind::RegWaw);
                }
            }
        }

        // Memory dependences: scan prior memory ops / calls.
        if (ii.isMem() || ii.isCall()) {
            for (int j = i - 1; j >= 0; --j) {
                const Instruction &ij = b.instrs[j];
                bool conflict = false;
                if (ii.isCall() || ij.isCall()) {
                    if (ii.isCall() && ij.isCall()) {
                        conflict = true;
                    } else {
                        const Instruction &call = ii.isCall() ? ii : ij;
                        const Instruction &memop = ii.isCall() ? ij : ii;
                        if (memop.isMem())
                            conflict = aa.callMayTouch(call, memop);
                    }
                } else if (ii.isMem() && ij.isMem()) {
                    if (ii.isLoad() && ij.isLoad()) {
                        conflict = false;
                    } else if (ii.op == Opcode::LD_A && ij.isStore()) {
                        // Advanced load: the store→load dependence is the
                        // one ld.a exists to break; the trailing chk.a
                        // (an ordinary load for aliasing purposes) keeps
                        // the store→check ordering and re-executes the
                        // access if the ALAT entry was invalidated.
                        conflict = false;
                    } else {
                        conflict = aa.mayAlias(f, ii, ij);
                    }
                }
                if (conflict && !disjoint(i, j))
                    addEdge(j, i, 1, DepKind::Mem);
            }
        }

        // Control dependences.
        if (ii.op == Opcode::ALLOC) {
            for (int j = 0; j < i; ++j)
                addEdge(j, i, 1, DepKind::Control);
        }
        if (ii.isBranch()) {
            // Nothing before the branch may sink below it (latency 0
            // keeps same-group placement legal; the packer orders
            // non-branches first). Ops before the previous branch are
            // already transitively ordered through it.
            int j0 = last_branch >= 0 ? last_branch : 0;
            for (int j = j0; j < i; ++j)
                addEdge(j, i, j == last_branch ? 1 : 0, DepKind::Control);
            last_branch = i;
        } else if (last_branch >= 0) {
            // Nothing after a branch may hoist above it.
            addEdge(last_branch, i, 1, DepKind::Control);
        }
        if (last_branch >= 0 && ii.op == Opcode::ALLOC) {
            addEdge(last_branch, i, 1, DepKind::Control);
        }
    }

    // Heights (reverse topological order = reverse index order, since all
    // edges go forward).
    for (int i = n_ - 1; i >= 0; --i) {
        int h = 0;
        for (int ei : succs_[i])
            h = std::max(h, edges_[ei].latency + heights_[edges_[ei].to]);
        heights_[i] = h;
    }
}

int
DepDag::criticalPathLength() const
{
    int h = 0;
    for (int i = 0; i < n_; ++i)
        h = std::max(h, heights_[i] + 1);
    return h;
}

} // namespace epic
