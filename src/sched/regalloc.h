/**
 * @file
 * Linear-scan register allocation with IA-64 register-stack semantics.
 *
 * Virtual Gr/Fr registers map onto the stacked partition (r32-r127);
 * predicates map onto p16-p63. A function's stacked-register demand is
 * recorded via an alloc instruction at entry and in
 * Function::stacked_regs — this is what the timing model's register
 * stack engine (RSE) charges for on deep call chains (paper §4.4).
 * When the stacked partition is exhausted, intervals spill to a
 * stack-frame slot addressed off gr12, using reserved temporaries
 * gr28-gr31 for fills.
 */
#ifndef EPIC_SCHED_REGALLOC_H
#define EPIC_SCHED_REGALLOC_H

#include "ir/program.h"

namespace epic {

class AnalysisManager;

/** Allocation results (per function). */
struct RegAllocStats
{
    int gr_used = 0;     ///< stacked general registers consumed
    int fr_used = 0;
    int pr_used = 0;
    int spilled = 0;     ///< virtual registers spilled
    int fills = 0;       ///< fill (reload) instructions inserted
    int stores = 0;      ///< spill-store instructions inserted

    RegAllocStats &
    operator+=(const RegAllocStats &o)
    {
        gr_used = std::max(gr_used, o.gr_used);
        fr_used = std::max(fr_used, o.fr_used);
        pr_used = std::max(pr_used, o.pr_used);
        spilled += o.spilled;
        fills += o.fills;
        stores += o.stores;
        return *this;
    }
};

/** Allocate one function (idempotent: skips if already allocated). */
RegAllocStats allocateRegisters(Function &f);

/** Same, reading CFG/liveness through the manager. */
RegAllocStats allocateRegisters(Function &f, AnalysisManager &am);

/** Allocate every function in the program. */
RegAllocStats allocateProgram(Program &prog);

} // namespace epic

#endif // EPIC_SCHED_REGALLOC_H
