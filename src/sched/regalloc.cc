#include "sched/regalloc.h"

#include <algorithm>
#include <map>

#include "analysis/manager.h"
#include "support/error.h"
#include "support/logging.h"

namespace epic {

namespace {

/// Reserved fill/spill temporaries (never allocated).
constexpr int kSpillTemps[] = {28, 29, 30, 31};

struct Interval
{
    Reg vreg;
    int start = INT32_MAX;
    int end = INT32_MIN;
    int phys = -1;
    bool spilled = false;
    int slot = -1;

    void
    extend(int pos)
    {
        start = std::min(start, pos);
        end = std::max(end, pos);
    }
};

/** Allocatable physical id range per class. */
std::pair<int, int>
physPool(RegClass cls)
{
    switch (cls) {
      case RegClass::Gr: return {32, 127};
      case RegClass::Fr: return {32, 127};
      case RegClass::Pr: return {16, 63};
      case RegClass::Br: return {1, 7};
    }
    return {0, -1};
}

} // namespace

RegAllocStats
allocateRegisters(Function &f)
{
    AnalysisManager am(f);
    return allocateRegisters(f, am);
}

RegAllocStats
allocateRegisters(Function &f, AnalysisManager &am)
{
    RegAllocStats stats;
    if (f.reg_allocated)
        return stats;

    const Cfg &cfg = am.cfg();
    const Liveness &live = am.liveness();

    // Global position numbering over blocks in id order.
    std::map<int, std::pair<int, int>> block_pos; // bid -> [start, end]
    int pos = 0;
    for (const auto &bp : f.blocks) {
        if (!bp)
            continue;
        int start = pos;
        pos += static_cast<int>(bp->instrs.size()) + 1;
        block_pos[bp->id] = {start, pos - 1};
    }

    // Build intervals per class.
    std::map<Reg, Interval> intervals;
    auto touch = [&](Reg r, int p) {
        if (!r.valid() || !isVirtual(r))
            return;
        auto &iv = intervals[r];
        iv.vreg = r;
        iv.extend(p);
    };

    // Params are defined "before" position 0.
    for (Reg p : f.params)
        touch(p, -1);

    std::vector<Reg> uses, defs;
    for (const auto &bp : f.blocks) {
        if (!bp)
            continue;
        auto [bs, be] = block_pos[bp->id];
        if (cfg.reachable(bp->id)) {
            for (Reg r : live.liveIn(bp->id))
                touch(r, bs);
            for (Reg r : live.liveOut(bp->id))
                touch(r, be);
        }
        int p = bs + 1;
        for (const Instruction &inst : bp->instrs) {
            instrUses(inst, uses);
            instrDefs(inst, defs);
            for (Reg r : uses)
                touch(r, p);
            for (Reg r : defs)
                touch(r, p);
            ++p;
        }
    }

    // Call positions: intervals that span a call must live in stacked
    // registers (frame-preserved); call-free intervals prefer the
    // static/scratch partition (gr2..gr27), which does not contribute
    // to the register-stack frame — exactly how production IA-64
    // allocators keep RSE traffic down.
    std::vector<int> call_positions;
    for (const auto &bp : f.blocks) {
        if (!bp)
            continue;
        int pos2 = block_pos[bp->id].first + 1;
        for (const Instruction &inst : bp->instrs) {
            if (inst.isCall())
                call_positions.push_back(pos2);
            ++pos2;
        }
    }
    std::sort(call_positions.begin(), call_positions.end());
    auto spans_call = [&](const Interval &iv) {
        auto it = std::lower_bound(call_positions.begin(),
                                   call_positions.end(), iv.start);
        return it != call_positions.end() && *it <= iv.end;
    };

    // Linear scan per register class.
    std::map<Reg, Reg> assignment;   // vreg -> phys reg
    std::map<Reg, int> spill_slots;  // vreg -> frame slot
    int next_slot = 0;

    for (RegClass cls :
         {RegClass::Gr, RegClass::Fr, RegClass::Pr, RegClass::Br}) {
        std::vector<Interval *> ivs;
        for (auto &[r, iv] : intervals)
            if (r.cls == cls)
                ivs.push_back(&iv);
        std::sort(ivs.begin(), ivs.end(),
                  [](const Interval *a, const Interval *b) {
                      return a->start < b->start;
                  });
        auto [lo, hi] = physPool(cls);
        std::vector<int> free_regs;
        for (int r = hi; r >= lo; --r)
            free_regs.push_back(r); // pop_back yields lowest id first
        // Scratch partition (Gr only): gr2..gr27.
        std::vector<int> free_scratch;
        if (cls == RegClass::Gr)
            for (int r = 27; r >= 2; --r)
                if (r != kGrSp.id)
                    free_scratch.push_back(r);
        std::vector<Interval *> active;
        int max_used = 0;

        for (Interval *iv : ivs) {
            // Expire finished intervals.
            for (auto it = active.begin(); it != active.end();) {
                if ((*it)->end < iv->start) {
                    int ph = (*it)->phys;
                    if (cls == RegClass::Gr && ph < lo)
                        free_scratch.push_back(ph);
                    else
                        free_regs.push_back(ph);
                    it = active.erase(it);
                } else {
                    ++it;
                }
            }
            // Call-free Gr intervals take a scratch register first.
            if (cls == RegClass::Gr && !free_scratch.empty() &&
                !spans_call(*iv)) {
                iv->phys = free_scratch.back();
                free_scratch.pop_back();
                active.push_back(iv);
                continue;
            }
            if (!free_regs.empty()) {
                iv->phys = free_regs.back();
                free_regs.pop_back();
                active.push_back(iv);
                max_used = std::max(max_used, iv->phys - lo + 1);
                continue;
            }
            // Spill the interval with the furthest end. Only Gr spilling
            // is implemented; exhausting another class is a contained
            // per-function failure the firewall can absorb by degrading
            // the function to a less register-hungry configuration.
            if (cls != RegClass::Gr) {
                throw CompileError(
                    "regalloc",
                    std::string("out of ") + regClassName(cls) +
                        " registers in " + f.name +
                        " (only Gr spilling is implemented)");
            }
            Interval *victim = iv;
            for (Interval *a : active) {
                // Scratch-held intervals are not spill candidates for a
                // call-spanning interval (the register would be wrong).
                if (cls == RegClass::Gr && a->phys < lo)
                    continue;
                if (a->end > victim->end)
                    victim = a;
            }
            if (victim != iv) {
                iv->phys = victim->phys;
                active.erase(
                    std::find(active.begin(), active.end(), victim));
                active.push_back(iv);
            }
            victim->phys = -1;
            victim->spilled = true;
            victim->slot = next_slot++;
            spill_slots[victim->vreg] = victim->slot;
            ++stats.spilled;
        }

        if (cls == RegClass::Gr)
            stats.gr_used = max_used;
        else if (cls == RegClass::Fr)
            stats.fr_used = max_used;
        else if (cls == RegClass::Pr)
            stats.pr_used = max_used;
    }
    for (auto &[r, iv] : intervals)
        if (!iv.spilled)
            assignment[r] = Reg(r.cls, iv.phys);

    // Rewrite instructions (with spill code where needed).
    auto remap = [&](Reg r) -> Reg {
        if (!isVirtual(r))
            return r;
        auto it = assignment.find(r);
        epic_assert(it != assignment.end(), "unassigned vreg ", r.str(),
                    " in ", f.name);
        return it->second;
    };

    for (auto &bp : f.blocks) {
        if (!bp)
            continue;
        std::vector<Instruction> out;
        out.reserve(bp->instrs.size());
        for (Instruction inst : bp->instrs) {
            int next_temp = 0;
            auto take_temp = [&]() {
                epic_assert(next_temp <
                                static_cast<int>(std::size(kSpillTemps)),
                            "spill temporaries exhausted in ", f.name);
                return Reg(RegClass::Gr, kSpillTemps[next_temp++]);
            };

            // Fills for spilled sources.
            for (Operand &o : inst.srcs) {
                if (!o.isReg() || !isVirtual(o.reg))
                    continue;
                auto sit = spill_slots.find(o.reg);
                if (sit == spill_slots.end())
                    continue;
                Reg t = take_temp();
                Instruction addr;
                addr.op = Opcode::ADDI;
                addr.dests = {t};
                addr.srcs = {Operand::makeReg(kGrSp),
                             Operand::makeImm(sit->second * 8)};
                addr.attr |= kAttrSpill;
                out.push_back(addr);
                Instruction fill;
                fill.op = Opcode::LD;
                fill.size = 8;
                fill.dests = {t};
                fill.srcs = {Operand::makeReg(t)};
                fill.attr |= kAttrSpill;
                fill.alias_group = -1;
                out.push_back(fill);
                o.reg = t;
                ++stats.fills;
            }

            // Guards are predicates and never spill; just remap.
            inst.guard = remap(inst.guard);
            for (Operand &o : inst.srcs)
                if (o.isReg())
                    o.reg = remap(o.reg);

            // Spilled destinations: write a temp, store it after.
            std::vector<std::pair<Reg, int>> dest_stores;
            for (Reg &d : inst.dests) {
                if (!isVirtual(d)) {
                    continue;
                }
                auto sit = spill_slots.find(d);
                if (sit != spill_slots.end()) {
                    Reg t = take_temp();
                    dest_stores.push_back({t, sit->second});
                    d = t;
                } else {
                    d = remap(d);
                }
            }
            Reg inst_guard = inst.guard;
            out.push_back(std::move(inst));
            for (auto &[t, slot] : dest_stores) {
                Reg at = take_temp();
                Instruction addr;
                addr.op = Opcode::ADDI;
                addr.dests = {at};
                addr.srcs = {Operand::makeReg(kGrSp),
                             Operand::makeImm(slot * 8)};
                addr.attr |= kAttrSpill;
                out.push_back(addr);
                Instruction st;
                st.op = Opcode::ST;
                st.size = 8;
                // The store must be squashed when the def was squashed.
                st.guard = inst_guard;
                st.srcs = {Operand::makeReg(at), Operand::makeReg(t)};
                st.attr |= kAttrSpill;
                out.push_back(st);
                ++stats.stores;
            }
        }
        bp->instrs = std::move(out);
    }

    // Remap parameters.
    for (Reg &p : f.params)
        p = remap(p);

    // Record the register-stack frame and emit the alloc.
    f.stacked_regs = stats.gr_used;
    f.spill_slots = next_slot;
    f.reg_allocated = true;
    BasicBlock *entry = f.block(f.entry);
    epic_assert(entry, "function without entry block");
    Instruction alloc;
    alloc.op = Opcode::ALLOC;
    alloc.srcs = {Operand::makeImm(f.stacked_regs)};
    entry->instrs.insert(entry->instrs.begin(), alloc);

    return stats;
}

RegAllocStats
allocateProgram(Program &prog)
{
    RegAllocStats total;
    for (auto &fp : prog.funcs)
        if (fp)
            total += allocateRegisters(*fp);
    return total;
}

} // namespace epic
