/**
 * @file
 * List scheduler and bundle packer.
 *
 * Schedules each block's instructions into issue groups under the
 * machine's dispersal constraints (port counts, load/store limits, issue
 * width), then packs each group into IA-64 bundle templates, inserting
 * explicit NOPs for unfilled slots — the mechanism behind the paper's
 * Figure 6 observation that better-scheduled code retires *fewer* NOPs
 * and therefore fetches more efficiently.
 */
#ifndef EPIC_SCHED_LISTSCHED_H
#define EPIC_SCHED_LISTSCHED_H

#include "analysis/alias.h"
#include "ir/program.h"
#include "mach/machine.h"

namespace epic {

class AnalysisManager;

/** Scheduling statistics (per function or aggregated). */
struct SchedStats
{
    int blocks = 0;
    int groups = 0;      ///< issue groups emitted (planned cycles/pass)
    int bundles = 0;
    int nops = 0;        ///< explicit NOP slots
    int ops = 0;         ///< real (non-NOP) operations
    long long weighted_groups = 0;  ///< groups x block profile weight
    long long weighted_ops = 0;

    SchedStats &
    operator+=(const SchedStats &o)
    {
        blocks += o.blocks;
        groups += o.groups;
        bundles += o.bundles;
        nops += o.nops;
        ops += o.ops;
        weighted_groups += o.weighted_groups;
        weighted_ops += o.weighted_ops;
        return *this;
    }

    /** Average planned IPC over profiled execution. */
    double
    plannedIpc() const
    {
        return weighted_groups > 0
                   ? static_cast<double>(weighted_ops) /
                         static_cast<double>(weighted_groups)
                   : 0.0;
    }
};

/** Schedule every block of a function into bundles. */
SchedStats scheduleFunction(Function &f, const AliasAnalysis &aa,
                            const MachineConfig &mach);

/**
 * Same, with per-block predicate relations (and alias info) served by
 * the manager. Scheduling only stamps sched_cycle and rebuilds bundles,
 * so it preserves every cached analysis.
 */
SchedStats scheduleFunction(Function &f, AnalysisManager &am,
                            const MachineConfig &mach);

/** Schedule the whole program. */
SchedStats scheduleProgram(Program &prog, const AliasAnalysis &aa,
                           const MachineConfig &mach);

} // namespace epic

#endif // EPIC_SCHED_LISTSCHED_H
