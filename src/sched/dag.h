/**
 * @file
 * Intra-block dependence DAG for scheduling.
 *
 * Encodes register RAW/WAR/WAW, memory dependences (filtered by alias
 * analysis and by predicate disjointness), and control dependences
 * (instructions never move above or below a branch; the explicit code
 * motion that *does* cross branches is the ILP-CS control-speculation
 * transform, which runs before scheduling and reorders the instruction
 * list itself).
 *
 * Latency semantics of an edge (from -> to, lat):
 *   cycle(to) >= cycle(from) + lat. A latency of 0 permits same-group
 * placement (used for op->branch ordering and the IA-64
 * compare-to-dependent-branch special case); the bundle packer preserves
 * intra-group order (non-branches before branches).
 */
#ifndef EPIC_SCHED_DAG_H
#define EPIC_SCHED_DAG_H

#include <vector>

#include "analysis/alias.h"
#include "analysis/predrel.h"
#include "ir/function.h"
#include "mach/machine.h"

namespace epic {

/** Dependence kinds (diagnostic). */
enum class DepKind : uint8_t { RegRaw, RegWar, RegWaw, Mem, Control };

/** One DAG edge. */
struct DagEdge
{
    int from;
    int to;
    int latency;
    DepKind kind;
};

/** Dependence DAG over one block's instructions. */
class DepDag
{
  public:
    /** The block's predicate relations are supplied by the caller
     *  (typically the AnalysisManager's per-block cache). */
    DepDag(const Function &f, const BasicBlock &b, const AliasAnalysis &aa,
           const MachineConfig &mach, const PredRelations &prel);

    int size() const { return n_; }
    const std::vector<DagEdge> &edges() const { return edges_; }
    /** Edge indices entering instruction i. */
    const std::vector<int> &predEdges(int i) const { return preds_[i]; }
    /** Edge indices leaving instruction i. */
    const std::vector<int> &succEdges(int i) const { return succs_[i]; }

    /** Critical-path height (longest latency path from i to any sink). */
    int height(int i) const { return heights_[i]; }

    /** Longest path through the whole block (the "dependence height"). */
    int criticalPathLength() const;

  private:
    void addEdge(int from, int to, int lat, DepKind kind);

    int n_;
    std::vector<DagEdge> edges_;
    std::vector<std::vector<int>> preds_, succs_;
    std::vector<int> heights_;
};

} // namespace epic

#endif // EPIC_SCHED_DAG_H
