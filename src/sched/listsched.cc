#include "sched/listsched.h"

#include <algorithm>
#include <optional>

#include "analysis/manager.h"
#include "sched/dag.h"
#include "support/logging.h"

namespace epic {

namespace {

/**
 * Try to pack `ops` (instruction indices of one issue group, non-branches
 * first, branches last in source order) into at most `max_bundles`
 * bundles. Returns the packing with the fewest bundles (then fewest
 * NOPs), or nullopt when infeasible.
 */
std::optional<std::vector<Bundle>>
packGroup(const BasicBlock &b, const std::vector<int> &ops, int max_bundles)
{
    // Greedy in-order matcher for one template sequence.
    auto try_templates =
        [&](const std::vector<int> &tmpls)
        -> std::optional<std::vector<Bundle>> {
        std::vector<Bundle> result;
        size_t next_op = 0;
        for (int t : tmpls) {
            Bundle bun;
            bun.tmpl = static_cast<uint8_t>(t);
            for (int s = 0; s < 3; ++s) {
                if (next_op < ops.size() &&
                    fuFitsSlot(b.instrs[ops[next_op]].info().fu,
                               kTemplates[t].slots[s])) {
                    bun.slots[s] = static_cast<int16_t>(ops[next_op]);
                    ++next_op;
                } else {
                    bun.slots[s] = kSlotNop;
                }
            }
            result.push_back(bun);
        }
        if (next_op != ops.size())
            return std::nullopt;
        result.back().stop_after = true;
        return result;
    };

    std::optional<std::vector<Bundle>> best;
    int best_nops = 0;
    auto consider = [&](const std::vector<int> &tmpls) {
        auto r = try_templates(tmpls);
        if (!r)
            return;
        int nops = 0;
        for (const Bundle &bun : *r)
            for (int16_t s : bun.slots)
                if (s == kSlotNop)
                    ++nops;
        if (!best || r->size() < best->size() ||
            (r->size() == best->size() && nops < best_nops)) {
            best = std::move(r);
            best_nops = nops;
        }
    };

    for (int t1 = 0; t1 < kNumTemplates; ++t1)
        consider({t1});
    if (max_bundles >= 2 && ops.size() > 1) {
        for (int t1 = 0; t1 < kNumTemplates; ++t1)
            for (int t2 = 0; t2 < kNumTemplates; ++t2)
                consider({t1, t2});
    }
    return best;
}

/** Dispersal counters for group feasibility. */
struct GroupRes
{
    int loads = 0, stores = 0, m_only = 0, i_only = 0, f = 0, br = 0,
        a = 0, total = 0;

    bool
    feasible(const MachineConfig &m) const
    {
        if (total > m.issue_width || total > m.max_ops_per_group)
            return false;
        if (loads > m.max_loads || stores > m.max_stores)
            return false;
        if (m_only > m.m_ports || i_only > m.i_ports)
            return false;
        if (f > m.f_ports || br > m.b_ports)
            return false;
        // A-type ops take leftover I then M ports.
        int i_free = m.i_ports - i_only;
        int m_free = m.m_ports - m_only;
        if (a > i_free + m_free)
            return false;
        return true;
    }

    void
    add(const Instruction &inst)
    {
        ++total;
        const OpcodeInfo &info = inst.info();
        if (info.is_load)
            ++loads;
        if (info.is_store)
            ++stores;
        switch (info.fu) {
          case FuClass::M: ++m_only; break;
          case FuClass::I: ++i_only; break;
          case FuClass::F: ++f; break;
          case FuClass::B: ++br; break;
          case FuClass::A: ++a; break;
        }
    }
};

SchedStats
scheduleBlock(const Function &f, BasicBlock &b, AnalysisManager &am,
              const MachineConfig &mach)
{
    SchedStats stats;
    stats.blocks = 1;
    b.bundles.clear();
    int n = static_cast<int>(b.instrs.size());
    if (n == 0)
        return stats;

    const PredRelations &prel = am.predRelations(b.id);
    DepDag dag(f, b, am.alias(), mach, prel);

    std::vector<int> ready_cycle(n, 0);  ///< earliest legal cycle
    std::vector<int> unsched_preds(n, 0);
    for (int i = 0; i < n; ++i)
        unsched_preds[i] = static_cast<int>(dag.predEdges(i).size());

    std::vector<int> ready;
    for (int i = 0; i < n; ++i)
        if (unsched_preds[i] == 0)
            ready.push_back(i);

    int scheduled = 0;
    int cycle = 0;
    std::vector<std::vector<int>> groups;

    while (scheduled < n) {
        std::vector<int> group;
        GroupRes res;

        // Fill the group greedily; committing an op can make a zero-
        // latency successor (e.g. the branch guarded by a just-placed
        // compare) ready in the same cycle, so iterate to a fixpoint.
        bool progress = true;
        while (progress) {
            progress = false;
            std::vector<int> cands;
            for (int i : ready)
                if (ready_cycle[i] <= cycle)
                    cands.push_back(i);
            if (mach.source_order_scheduling) {
                std::sort(cands.begin(), cands.end());
            } else {
                std::sort(cands.begin(), cands.end(), [&](int x, int y) {
                    if (dag.height(x) != dag.height(y))
                        return dag.height(x) > dag.height(y);
                    return x < y;
                });
            }
            for (int i : cands) {
                GroupRes trial = res;
                trial.add(b.instrs[i]);
                if (!trial.feasible(mach)) {
                    if (mach.source_order_scheduling)
                        break; // strict in-order fill: no skipping ahead
                    continue;
                }
                // Tentative pack check (branch placement, templates).
                std::vector<int> trial_group = group;
                trial_group.push_back(i);
                // Non-branches before branches, both in source order.
                std::stable_sort(trial_group.begin(), trial_group.end(),
                                 [&](int x, int y) {
                                     bool bx = b.instrs[x].isBranch();
                                     bool by = b.instrs[y].isBranch();
                                     if (bx != by)
                                         return !bx;
                                     return x < y;
                                 });
                if (!packGroup(b, trial_group,
                               mach.max_bundles_per_group)) {
                    if (mach.source_order_scheduling)
                        break;
                    continue;
                }
                group = std::move(trial_group);
                res = trial;
                // Commit the op so its successors can become ready.
                b.instrs[i].sched_cycle = cycle;
                ++scheduled;
                ready.erase(std::find(ready.begin(), ready.end(), i));
                for (int ei : dag.succEdges(i)) {
                    const DagEdge &e = dag.edges()[ei];
                    ready_cycle[e.to] = std::max(ready_cycle[e.to],
                                                 cycle + e.latency);
                    if (--unsched_preds[e.to] == 0)
                        ready.push_back(e.to);
                }
                progress = true;
                break; // re-gather candidates
            }
        }

        if (!group.empty()) {
            groups.push_back(std::move(group));
            ++stats.groups;
        } else {
            // Nothing issued: latency gap. The gap still costs a planned
            // cycle (the machine will stall on use), so count it.
            ++stats.groups;
        }
        ++cycle;
        epic_assert(cycle < 100000, "scheduler livelock in ", f.name);
    }

    // Emit bundles.
    for (const std::vector<int> &group : groups) {
        auto packed = packGroup(b, group, mach.max_bundles_per_group);
        epic_assert(packed.has_value(), "group unpackable post-hoc");
        for (Bundle &bun : *packed) {
            for (int16_t s : bun.slots) {
                if (s == kSlotNop)
                    ++stats.nops;
                else
                    ++stats.ops;
            }
            ++stats.bundles;
            b.bundles.push_back(bun);
        }
    }

    stats.weighted_groups =
        static_cast<long long>(stats.groups * std::max(b.weight, 0.0));
    stats.weighted_ops =
        static_cast<long long>(stats.ops * std::max(b.weight, 0.0));
    return stats;
}

} // namespace

SchedStats
scheduleFunction(Function &f, const AliasAnalysis &aa,
                 const MachineConfig &mach)
{
    AnalysisManager am(f, &aa);
    return scheduleFunction(f, am, mach);
}

SchedStats
scheduleFunction(Function &f, AnalysisManager &am, const MachineConfig &mach)
{
    SchedStats total;
    for (auto &bp : f.blocks)
        if (bp)
            total += scheduleBlock(f, *bp, am, mach);
    return total;
}

SchedStats
scheduleProgram(Program &prog, const AliasAnalysis &aa,
                const MachineConfig &mach)
{
    SchedStats total;
    for (auto &fp : prog.funcs)
        if (fp)
            total += scheduleFunction(*fp, aa, mach);
    return total;
}

} // namespace epic
