#include "analysis/dom.h"

#include <algorithm>

namespace epic {

DomTree::DomTree(const Cfg &cfg, Arena *arena)
{
    if (!arena) {
        own_ = std::make_unique<Arena>(size_t{4} << 10);
        arena = own_.get();
    }
    Arena &a = *arena;

    const auto rpo = cfg.rpo();
    n_ = cfg.maxBlockId();
    idom_ = a.allocArray<int32_t>(n_);
    rpo_index_ = a.allocArray<int32_t>(n_);
    std::fill(idom_, idom_ + n_, -1);
    std::fill(rpo_index_, rpo_index_ + n_, -1);
    for (size_t i = 0; i < rpo.size(); ++i)
        rpo_index_[rpo[i]] = static_cast<int32_t>(i);

    if (rpo.empty())
        return;
    int entry = rpo[0];
    idom_[entry] = entry;

    auto intersect = [&](int a2, int b2) {
        while (a2 != b2) {
            while (rpo_index_[a2] > rpo_index_[b2])
                a2 = idom_[a2];
            while (rpo_index_[b2] > rpo_index_[a2])
                b2 = idom_[b2];
        }
        return a2;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 1; i < rpo.size(); ++i) {
            int b = rpo[i];
            int new_idom = -1;
            for (int p : cfg.preds(b)) {
                if (!cfg.reachable(p) || idom_[p] < 0)
                    continue;
                new_idom = new_idom < 0 ? p : intersect(p, new_idom);
            }
            if (new_idom >= 0 && idom_[b] != new_idom) {
                idom_[b] = new_idom;
                changed = true;
            }
        }
    }
    // Normalize: entry's idom reported as -1.
    idom_[entry] = -1;
}

DomTree::DomTree(const DomTree &o)
    : own_(std::make_unique<Arena>(size_t{4} << 10)), n_(o.n_)
{
    idom_ = own_->allocArray<int32_t>(n_);
    rpo_index_ = own_->allocArray<int32_t>(n_);
    std::copy(o.idom_, o.idom_ + n_, idom_);
    std::copy(o.rpo_index_, o.rpo_index_ + n_, rpo_index_);
}

bool
DomTree::dominates(int a, int b) const
{
    if (a == b)
        return true;
    if (b < 0 || b >= n_)
        return false;
    int x = idom_[b];
    while (x >= 0) {
        if (x == a)
            return true;
        x = idom_[x];
    }
    return false;
}

} // namespace epic
