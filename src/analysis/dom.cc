#include "analysis/dom.h"

namespace epic {

DomTree::DomTree(const Cfg &cfg)
{
    const auto &rpo = cfg.rpo();
    int n = cfg.maxBlockId();
    idom_.assign(n, -1);
    rpo_index_.assign(n, -1);
    for (size_t i = 0; i < rpo.size(); ++i)
        rpo_index_[rpo[i]] = static_cast<int>(i);

    if (rpo.empty())
        return;
    int entry = rpo[0];
    idom_[entry] = entry;

    auto intersect = [&](int a, int b) {
        while (a != b) {
            while (rpo_index_[a] > rpo_index_[b])
                a = idom_[a];
            while (rpo_index_[b] > rpo_index_[a])
                b = idom_[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 1; i < rpo.size(); ++i) {
            int b = rpo[i];
            int new_idom = -1;
            for (int p : cfg.preds(b)) {
                if (!cfg.reachable(p) || idom_[p] < 0)
                    continue;
                new_idom = new_idom < 0 ? p : intersect(p, new_idom);
            }
            if (new_idom >= 0 && idom_[b] != new_idom) {
                idom_[b] = new_idom;
                changed = true;
            }
        }
    }
    // Normalize: entry's idom reported as -1.
    idom_[entry] = -1;
}

bool
DomTree::dominates(int a, int b) const
{
    if (a == b)
        return true;
    if (b < 0 || b >= static_cast<int>(idom_.size()))
        return false;
    int x = idom_[b];
    while (x >= 0) {
        if (x == a)
            return true;
        x = idom_[x];
    }
    return false;
}

} // namespace epic
