/**
 * @file
 * Dominator tree (Cooper-Harvey-Kennedy iterative algorithm) over a Cfg.
 *
 * Like the Cfg, the tables are flat arena arrays (the manager's arena
 * or a private one) and the object itself is a relocatable POD bundle
 * (DESIGN.md §16).
 */
#ifndef EPIC_ANALYSIS_DOM_H
#define EPIC_ANALYSIS_DOM_H

#include <cstdint>
#include <memory>

#include "analysis/cfg.h"
#include "support/arena.h"

namespace epic {

/** Dominator information for a function. */
class DomTree
{
  public:
    /** Standalone construction: arrays live in a private arena. */
    explicit DomTree(const Cfg &cfg) : DomTree(cfg, nullptr) {}

    /** Manager construction: arrays live in `arena` (null: private). */
    DomTree(const Cfg &cfg, Arena *arena);

    /** Deep copy into a fresh private arena (snapshot semantics). */
    DomTree(const DomTree &o);
    DomTree &
    operator=(const DomTree &o)
    {
        if (this != &o) {
            DomTree tmp(o);
            *this = std::move(tmp);
        }
        return *this;
    }
    DomTree(DomTree &&) noexcept = default;
    DomTree &operator=(DomTree &&) noexcept = default;

    /** Immediate dominator of a block (-1 for entry / unreachable). */
    int
    idom(int bid) const
    {
        return bid >= 0 && bid < n_ ? idom_[bid] : -1;
    }

    /** True if a dominates b (reflexive). */
    bool dominates(int a, int b) const;

  private:
    std::unique_ptr<Arena> own_; ///< null when borrowing the manager's
    int32_t n_ = 0;
    int32_t *idom_ = nullptr;
    int32_t *rpo_index_ = nullptr;
};

} // namespace epic

#endif // EPIC_ANALYSIS_DOM_H
