/**
 * @file
 * Dominator tree (Cooper-Harvey-Kennedy iterative algorithm) over a Cfg.
 */
#ifndef EPIC_ANALYSIS_DOM_H
#define EPIC_ANALYSIS_DOM_H

#include <vector>

#include "analysis/cfg.h"

namespace epic {

/** Dominator information for a function. */
class DomTree
{
  public:
    explicit DomTree(const Cfg &cfg);

    /** Immediate dominator of a block (-1 for entry / unreachable). */
    int idom(int bid) const
    {
        return bid >= 0 && bid < static_cast<int>(idom_.size())
                   ? idom_[bid]
                   : -1;
    }

    /** True if a dominates b (reflexive). */
    bool dominates(int a, int b) const;

  private:
    std::vector<int> idom_;
    std::vector<int> rpo_index_;
};

} // namespace epic

#endif // EPIC_ANALYSIS_DOM_H
