/**
 * @file
 * Control-flow graph view of a function.
 *
 * The CFG is computed on demand from the block structure (branch targets
 * plus fall-through edges) and carries profile-derived edge weights: a
 * block's side-exit branches carry their recorded taken counts, and the
 * fall-through edge receives the residue of the block weight. Because a
 * taken side exit skips the rest of the block, the residue is computed
 * sequentially.
 *
 * Storage (DESIGN.md §16): all tables are flat CSR arrays in an arena —
 * either the AnalysisManager's (so repeated rebuilds within one
 * compilation attempt reuse the same chunks) or a private one for
 * standalone construction. Accessors hand out trivially copyable
 * Span views; the Cfg object itself is a relocatable bundle of raw
 * pointers, so moving it never invalidates outstanding spans. Copying
 * deep-copies into a fresh private arena, preserving the value
 * semantics passes rely on when they snapshot a Cfg across mutations.
 */
#ifndef EPIC_ANALYSIS_CFG_H
#define EPIC_ANALYSIS_CFG_H

#include <cstdint>
#include <memory>

#include "ir/function.h"
#include "support/arena.h"

namespace epic {

/** One CFG edge. */
struct CfgEdge
{
    int from = -1;
    int to = -1;
    double weight = 0.0;
    bool is_fallthrough = false;
    int branch_idx = -1; ///< instruction index of the branch (-1 for FT)
};

/** Immutable CFG snapshot of a function. */
class Cfg
{
  public:
    /** Standalone construction: tables live in a private arena. */
    explicit Cfg(const Function &f) : Cfg(f, nullptr) {}

    /**
     * Manager construction: tables live in `arena` (rolled back by the
     * AnalysisManager once every arena-resident analysis is dropped).
     * Passing null falls back to a private arena.
     */
    Cfg(const Function &f, Arena *arena);

    /** Deep copy into a fresh private arena (snapshot semantics). */
    Cfg(const Cfg &o) : Cfg(*o.f_) {}
    Cfg &
    operator=(const Cfg &o)
    {
        if (this != &o) {
            Cfg tmp(o);
            *this = std::move(tmp);
        }
        return *this;
    }

    Cfg(Cfg &&) noexcept = default;
    Cfg &operator=(Cfg &&) noexcept = default;

    const Function &function() const { return *f_; }

    /** Successor block ids, deduped, in first-encounter order. */
    Span<const int32_t>
    succs(int bid) const
    {
        return {succ_dat_ + succ_off_[bid],
                static_cast<uint32_t>(succ_off_[bid + 1] -
                                      succ_off_[bid])};
    }
    /** Predecessor block ids in ascending order. */
    Span<const int32_t>
    preds(int bid) const
    {
        return {pred_dat_ + pred_off_[bid],
                static_cast<uint32_t>(pred_off_[bid + 1] -
                                      pred_off_[bid])};
    }
    /** Out-edges in program order (side exits first, then fallthrough). */
    Span<const CfgEdge>
    outEdges(int bid) const
    {
        return {edge_dat_ + edge_off_[bid],
                static_cast<uint32_t>(edge_off_[bid + 1] -
                                      edge_off_[bid])};
    }

    /** Reverse post-order over reachable blocks (entry first). */
    Span<const int32_t> rpo() const { return {rpo_, rpo_len_}; }

    /** True if the block id is live and reachable from entry. */
    bool
    reachable(int bid) const
    {
        return bid >= 0 && bid < n_ && reach_[bid];
    }

    int maxBlockId() const { return n_; }

  private:
    const Function *f_;
    std::unique_ptr<Arena> own_; ///< null when borrowing the manager's

    int32_t n_ = 0;
    int32_t *succ_off_ = nullptr; ///< n_+1 CSR offsets into succ_dat_
    int32_t *succ_dat_ = nullptr;
    int32_t *pred_off_ = nullptr;
    int32_t *pred_dat_ = nullptr;
    int32_t *edge_off_ = nullptr;
    CfgEdge *edge_dat_ = nullptr;
    int32_t *rpo_ = nullptr;
    uint32_t rpo_len_ = 0;
    uint8_t *reach_ = nullptr;
};

/**
 * Remove blocks unreachable from the entry (they arise naturally from
 * region formation). Returns the number removed.
 */
int pruneUnreachableBlocks(Function &f);

} // namespace epic

#endif // EPIC_ANALYSIS_CFG_H
