/**
 * @file
 * Control-flow graph view of a function.
 *
 * The CFG is computed on demand from the block structure (branch targets
 * plus fall-through edges) and carries profile-derived edge weights: a
 * block's side-exit branches carry their recorded taken counts, and the
 * fall-through edge receives the residue of the block weight. Because a
 * taken side exit skips the rest of the block, the residue is computed
 * sequentially.
 */
#ifndef EPIC_ANALYSIS_CFG_H
#define EPIC_ANALYSIS_CFG_H

#include <vector>

#include "ir/function.h"

namespace epic {

/** One CFG edge. */
struct CfgEdge
{
    int from = -1;
    int to = -1;
    double weight = 0.0;
    bool is_fallthrough = false;
    int branch_idx = -1; ///< instruction index of the branch (-1 for FT)
};

/** Immutable CFG snapshot of a function. */
class Cfg
{
  public:
    explicit Cfg(const Function &f);

    const Function &function() const { return *f_; }

    const std::vector<int> &succs(int bid) const { return succs_[bid]; }
    const std::vector<int> &preds(int bid) const { return preds_[bid]; }
    const std::vector<CfgEdge> &outEdges(int bid) const
    {
        return out_edges_[bid];
    }

    /** Reverse post-order over reachable blocks (entry first). */
    const std::vector<int> &rpo() const { return rpo_; }

    /** True if the block id is live and reachable from entry. */
    bool reachable(int bid) const
    {
        return bid >= 0 && bid < static_cast<int>(reach_.size()) &&
               reach_[bid];
    }

    int maxBlockId() const { return static_cast<int>(succs_.size()); }

  private:
    const Function *f_;
    std::vector<std::vector<int>> succs_;
    std::vector<std::vector<int>> preds_;
    std::vector<std::vector<CfgEdge>> out_edges_;
    std::vector<int> rpo_;
    std::vector<bool> reach_;
};

/**
 * Remove blocks unreachable from the entry (they arise naturally from
 * region formation). Returns the number removed.
 */
int pruneUnreachableBlocks(Function &f);

} // namespace epic

#endif // EPIC_ANALYSIS_CFG_H
