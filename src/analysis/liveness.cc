#include "analysis/liveness.h"

#include <unordered_map>

namespace epic {

namespace {

bool
isParallelMergeCmp(const Instruction &inst)
{
    return (inst.op == Opcode::CMP || inst.op == Opcode::CMPI ||
            inst.op == Opcode::FCMP) &&
           (inst.ctype == CmpType::And || inst.ctype == CmpType::Or);
}

} // namespace

void
instrUses(const Instruction &inst, std::vector<Reg> &out)
{
    out.clear();
    if (inst.guard != kPrTrue)
        out.push_back(inst.guard);
    for (const Operand &o : inst.srcs)
        if (o.isReg() && o.reg != kGrZero)
            out.push_back(o.reg);
    // And/or compares write their destinations only when the condition
    // fires: the incoming values flow through, so they are uses too.
    if (isParallelMergeCmp(inst))
        for (const Reg &d : inst.dests)
            if (d != kPrTrue)
                out.push_back(d);
}

bool
defsAreUnconditional(const Instruction &inst)
{
    if (isParallelMergeCmp(inst))
        return false;
    if (inst.guard == kPrTrue)
        return true;
    // unc compares clear their destinations even when squashed.
    return (inst.op == Opcode::CMP || inst.op == Opcode::CMPI) &&
           inst.ctype == CmpType::Unc;
}

void
instrDefs(const Instruction &inst, std::vector<Reg> &out)
{
    out.clear();
    for (const Reg &d : inst.dests)
        if (d != kGrZero && d != kPrTrue)
            out.push_back(d);
}

Liveness::Liveness(const Cfg &cfg) : cfg_(&cfg)
{
    const Function &f = cfg.function();
    int n = cfg.maxBlockId();
    live_in_.assign(n, {});
    live_out_.assign(n, {});

    // Superblocks carry side exits, so a block is NOT straight-line: a
    // use at a side exit's target is exposed through everything that
    // precedes the exit, even if the register is redefined later in the
    // block. The transfer function is therefore a per-instruction
    // backward walk that merges each side-exit target's live-in at the
    // exit point, rather than classic gen/kill sets.
    //
    // Predicate-aware refinement (cf. the paper's references [27][28]):
    // a use guarded by p that follows a def of the same register also
    // guarded by p is *not* upward-exposed — whenever the use executes,
    // the def executed too. The fact is invalidated if the predicate
    // register is redefined in between. Precomputed forward, consumed by
    // the backward walk as "effective uses".
    std::vector<std::vector<std::vector<Reg>>> eff_uses(n);
    std::vector<Reg> uses, defs;
    for (int bid : cfg.rpo()) {
        const BasicBlock *b = f.block(bid);
        auto &block_uses = eff_uses[bid];
        block_uses.resize(b->instrs.size());
        std::unordered_map<Reg, Reg> kill_guard; // reg -> def's guard
        RegSet killed;
        for (size_t i = 0; i < b->instrs.size(); ++i) {
            const Instruction &inst = b->instrs[i];
            instrUses(inst, uses);
            for (Reg r : uses) {
                auto it = kill_guard.find(r);
                if (!killed.count(r) && it != kill_guard.end() &&
                    it->second == inst.guard) {
                    continue; // covered by a same-predicate def
                }
                block_uses[i].push_back(r);
            }
            instrDefs(inst, defs);
            if (defsAreUnconditional(inst)) {
                for (Reg r : defs) {
                    killed.insert(r);
                    kill_guard.erase(r);
                }
            } else if (inst.guard != kPrTrue) {
                for (Reg r : defs) {
                    kill_guard[r] = inst.guard;
                    killed.erase(r);
                }
            }
            // Redefining a predicate invalidates facts guarded by it,
            // and a side exit invalidates nothing (facts are per-path
            // prefixes, which the exit shares).
            for (Reg r : defs) {
                if (r.cls != RegClass::Pr)
                    continue;
                for (auto it = kill_guard.begin();
                     it != kill_guard.end();) {
                    if (it->second == r)
                        it = kill_guard.erase(it);
                    else
                        ++it;
                }
            }
        }
    }

    // Iterate to fixpoint, visiting in reverse RPO for fast convergence.
    const auto &rpo = cfg.rpo();
    bool changed = true;
    while (changed) {
        changed = false;
        for (uint32_t ri = rpo.size(); ri-- > 0;) {
            int bid = rpo[ri];
            const BasicBlock *b = f.block(bid);
            // live-out stays the conservative union over all successors
            // (its consumers — allocation extension, promotion's
            // dies-in-block test — want the superset); the backward
            // walk re-adds each side-exit contribution at the exit
            // point anyway, so live-in is computed precisely.
            RegSet out;
            for (int s : cfg.succs(bid)) {
                if (!cfg.reachable(s))
                    continue;
                for (Reg r : live_in_[s])
                    out.insert(r);
            }
            RegSet in = out;
            for (int i = static_cast<int>(b->instrs.size()) - 1; i >= 0;
                 --i) {
                const Instruction &inst = b->instrs[i];
                if (inst.isBranch() && inst.target >= 0 &&
                    cfg.reachable(inst.target)) {
                    for (Reg r : live_in_[inst.target])
                        in.insert(r);
                }
                if (defsAreUnconditional(inst)) {
                    instrDefs(inst, defs);
                    for (Reg r : defs)
                        in.erase(r);
                }
                for (Reg r : eff_uses[bid][i])
                    in.insert(r);
            }
            if (out != live_out_[bid] || in != live_in_[bid]) {
                live_out_[bid] = std::move(out);
                live_in_[bid] = std::move(in);
                changed = true;
            }
        }
    }
}

RegSet
Liveness::liveBefore(int bid, int idx) const
{
    const BasicBlock *b = cfg_->function().block(bid);
    RegSet live = live_out_[bid];
    std::vector<Reg> uses, defs;
    for (int i = static_cast<int>(b->instrs.size()) - 1; i >= idx; --i) {
        const Instruction &inst = b->instrs[i];
        // A side exit makes the target's live-in live here as well.
        if (inst.isBranch() && inst.target >= 0) {
            if (inst.target < static_cast<int>(live_in_.size()))
                for (Reg r : live_in_[inst.target])
                    live.insert(r);
        }
        if (defsAreUnconditional(inst)) {
            instrDefs(inst, defs);
            for (Reg r : defs)
                live.erase(r);
        }
        instrUses(inst, uses);
        for (Reg r : uses)
            live.insert(r);
    }
    return live;
}

} // namespace epic
