/**
 * @file
 * Per-function analysis manager: lazily computed, cached, explicitly
 * invalidated function analyses.
 *
 * Every region transform in the paper's pipeline (superblock formation,
 * hyperblock if-conversion, speculation, allocation, scheduling) is
 * driven by the same handful of analyses — Cfg, DomTree, Liveness,
 * LoopForest, per-block PredRelations — and historically each consumer
 * rebuilt them ad hoc at point of use. The AnalysisManager is the single
 * construction point: passes *query* (`am.cfg()`, `am.liveness()`, ...)
 * and *invalidate* (`am.invalidateAll()`, or let the pipeline apply the
 * pass's declared preserves set), and repeated queries between
 * mutations are cache hits instead of recomputation.
 *
 * The contract, in one line: a cached analysis is valid until the IR it
 * was computed from is mutated, and whoever mutates must invalidate.
 * Three execution modes police that contract:
 *
 *  - Cached (default): queries return the cached object.
 *  - ForceRecompute: every hit-path query additionally recomputes the
 *    analysis from the current IR *in place* (object addresses are
 *    stable, so outstanding references stay valid and observe the fresh
 *    value). Counters are accounted exactly as in Cached mode, so run
 *    artifacts stay byte-comparable — if a run differs between Cached
 *    and ForceRecompute, a pass forgot to invalidate.
 *  - StaleCheck: every hit-path query recomputes fresh, structurally
 *    diffs it against the cache, and panics on divergence naming the
 *    offending pass — "forgot to invalidate" becomes a hard error
 *    instead of a silent miscompilation. Env-gated like the firewall's
 *    paranoid re-verify: EPICLAB_ANALYSIS_MODE=stale-check.
 *
 * Invalidation cascades along dependence: dropping Cfg drops DomTree,
 * Liveness and LoopForest too (Liveness additionally *cannot* outlive
 * the Cfg it holds a pointer into); dropping DomTree drops LoopForest.
 */
#ifndef EPIC_ANALYSIS_MANAGER_H
#define EPIC_ANALYSIS_MANAGER_H

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "analysis/cfg.h"
#include "analysis/dom.h"
#include "analysis/liveness.h"
#include "analysis/loops.h"
#include "analysis/predrel.h"

namespace epic {

class AliasAnalysis;

/** The analyses the manager caches, one bit / counter slot each. */
enum class AnalysisKind : int {
    Cfg = 0,
    Dom,
    Liveness,
    Loops,
    PredRel,
};

inline constexpr int kNumAnalysisKinds = 5;

/** Stable snake_case name (telemetry keys, diagnostics). */
const char *analysisKindName(AnalysisKind k);

/** Bitmask over AnalysisKind, the PassDesc `preserves` type. */
using AnalysisSet = unsigned;

constexpr AnalysisSet
analysisBit(AnalysisKind k)
{
    return 1u << static_cast<int>(k);
}

inline constexpr AnalysisSet kPreserveNone = 0;
/// Sound for passes that are internally invalidation-correct: every
/// mid-pass mutation went through the manager, so whatever is still
/// cached at pass exit matches the final IR by construction. The
/// stale-check mode and the cached-vs-recompute artifact parity test
/// police the claim.
inline constexpr AnalysisSet kPreserveAll =
    (1u << kNumAnalysisKinds) - 1;
/// Valid for passes that rewrite instructions strictly *in place* —
/// nothing added, removed or reordered, no transfer touched. The Cfg
/// object itself survives (edge structure, weights and branch indices
/// are all byte-identical), and DomTree / LoopForest with it. Liveness
/// and PredRelations die with the register/guard rewrite.
inline constexpr AnalysisSet kPreserveBlockGraph =
    analysisBit(AnalysisKind::Cfg) | analysisBit(AnalysisKind::Dom) |
    analysisBit(AnalysisKind::Loops);
/// Valid for passes that may *insert* straight-line code (spills,
/// speculation checks) but never change edge structure: the Cfg object
/// dies — its per-edge branch indices shift with every insertion — but
/// dominance and loop nesting are pure edge-shape facts and survive.
inline constexpr AnalysisSet kPreserveGraphShape =
    analysisBit(AnalysisKind::Dom) | analysisBit(AnalysisKind::Loops);

/** Execution mode (see file comment). */
enum class AnalysisMode {
    Cached,
    ForceRecompute,
    StaleCheck,
};

/** Stable mode name (flags, diagnostics). */
const char *analysisModeName(AnalysisMode m);

/** Parse "cached" / "recompute" / "stale-check"; false on garbage. */
bool parseAnalysisMode(const std::string &s, AnalysisMode *out);

/**
 * Process-wide default mode from EPICLAB_ANALYSIS_MODE (read once);
 * Cached when unset, fatal on an unknown value.
 */
AnalysisMode envAnalysisMode();

/**
 * Hit/miss/invalidation counters per analysis kind. Deterministic in
 * every mode (hit/miss accounting is identical across modes by design;
 * invalidations count only actually-destroyed cached objects), so they
 * ride the JSONL artifact and counterStr().
 */
struct AnalysisCounters
{
    std::array<int64_t, kNumAnalysisKinds> hits{};
    std::array<int64_t, kNumAnalysisKinds> misses{};
    std::array<int64_t, kNumAnalysisKinds> invalidations{};

    AnalysisCounters &operator+=(const AnalysisCounters &o);

    int64_t totalHits() const;
    int64_t totalMisses() const;
    int64_t totalInvalidations() const;
    bool any() const;
};

/** a - b, element-wise (for per-pass attribution via snapshots). */
AnalysisCounters operator-(AnalysisCounters a, const AnalysisCounters &b);

/**
 * The per-function cache. One instance per compilation attempt (the
 * firewall constructs a fresh manager per clone, so rollback and
 * fallback-ladder re-entry start cold by construction). Not
 * thread-safe; a function compiles on one worker.
 */
class AnalysisManager
{
  public:
    explicit AnalysisManager(const Function &f,
                             const AliasAnalysis *aa = nullptr,
                             AnalysisMode mode = envAnalysisMode());

    AnalysisManager(const AnalysisManager &) = delete;
    AnalysisManager &operator=(const AnalysisManager &) = delete;

    const Function &function() const { return *f_; }
    AnalysisMode mode() const { return mode_; }

    /// The alias analysis is immutable over a compilation (hint- and
    /// attribute-driven), so the manager just carries the pointer.
    /// Fatal when queried on a manager constructed without one.
    const AliasAnalysis &alias() const;

    // ---- Queries (compute on miss, return cached on hit) ----
    const Cfg &cfg();
    const DomTree &domTree();     ///< implies cfg()
    const Liveness &liveness();   ///< implies cfg()
    const LoopForest &loopForest(); ///< implies cfg() + domTree()
    /** Predicate relations of one block (cached per block id). */
    const PredRelations &predRelations(int bid);

    // ---- Invalidation ----
    /** Drop everything (the conservative "I mutated the IR" call). */
    void invalidateAll();
    /** Drop one kind plus everything depending on it. */
    void invalidate(AnalysisKind k);
    /**
     * Drop every kind not in `preserved` (the pipeline's post-pass
     * call). Liveness is auto-demoted out of `preserved` when Cfg is
     * not preserved: it holds a pointer into the cached Cfg and cannot
     * outlive it.
     */
    void invalidateAllExcept(AnalysisSet preserved);

    /** Is a cached (valid) object present for this kind? */
    bool isCached(AnalysisKind k) const;

    /** Name the running pass for stale-checker diagnostics. */
    void beginPass(const std::string &pass) { pass_ = pass; }
    const std::string &currentPass() const { return pass_; }

    const AnalysisCounters &counters() const { return counters_; }

    /// Allocation activity of the manager's analysis arena (for the
    /// driver's compile.arena.* accounting).
    const ArenaCounters &arenaCounters() const
    {
        return arena_.counters();
    }

  private:
    void dropKind(AnalysisKind k);
    [[noreturn]] void stalePanic(AnalysisKind k) const;

    const Function *f_;
    const AliasAnalysis *aa_;
    AnalysisMode mode_;
    std::string pass_;
    AnalysisCounters counters_;

    /**
     * Backing store for the arena-resident analyses (Cfg, DomTree).
     * When the last of them is dropped the arena is rolled back to
     * `base_` in one watermark operation, so repeated
     * invalidate/recompute cycles within a compilation attempt reuse
     * the same chunks instead of re-mallocing table storage
     * (DESIGN.md §16). Scratch recomputes in ForceRecompute /
     * StaleCheck modes deliberately use private arenas and never touch
     * this one.
     */
    Arena arena_;
    Arena::Mark base_;
    /// Roll the arena back if no cached analysis references it anymore.
    void maybeRollbackArena();

    std::unique_ptr<Cfg> cfg_;
    std::unique_ptr<DomTree> dom_;
    std::unique_ptr<Liveness> live_;
    std::unique_ptr<LoopForest> loops_;
    std::map<int, PredRelations> predrel_;
};

/**
 * Manager-aware pruneUnreachableBlocks: queries the cached Cfg and
 * invalidates only when blocks were actually removed, so a clean prune
 * leaves the cache warm for the next round. (Declared here, not in
 * cfg.h, because it needs the manager type.)
 */
int pruneUnreachableBlocks(Function &f, AnalysisManager &am);

} // namespace epic

#endif // EPIC_ANALYSIS_MANAGER_H
