/**
 * @file
 * Memory disambiguation ("pointer analysis") layer.
 *
 * The real IMPACT compiler runs a modular interprocedural points-to
 * analysis (Cheng & Hwu, PLDI'00) plus the Omega test. We reproduce the
 * *effect* of that machinery on scheduling/optimization through symbol
 * and alias-group hints placed on memory operations by the program
 * builder, resolved at three fidelity levels:
 *
 *  - None:  every pair of memory accesses conflicts, and every call
 *           conflicts with every access (GCC-like behaviour: "no
 *           interprocedural pointer analysis").
 *  - Intra: hints disambiguate access pairs inside a function, but all
 *           calls remain barriers.
 *  - Inter: additionally computes transitive mod/ref symbol sets per
 *           function, so calls only conflict with accesses whose symbols
 *           they may touch (IMPACT-like behaviour).
 *
 * Functions carrying kFuncNoPointerAnalysis are analyzed as if all their
 * accesses were hint-less, reproducing the paper's disabled analysis for
 * eon and perlbmk.
 */
#ifndef EPIC_ANALYSIS_ALIAS_H
#define EPIC_ANALYSIS_ALIAS_H

#include <memory>
#include <set>
#include <vector>

#include "ir/program.h"

namespace epic {

/** Disambiguation fidelity. */
enum class AliasLevel { None, Intra, Inter };

/** Whole-program alias information. */
class AliasAnalysis
{
  public:
    AliasAnalysis(const Program &prog, AliasLevel level);

    AliasLevel level() const { return level_; }

    /**
     * May two memory operations of the same function touch overlapping
     * locations? Both must be loads/stores.
     */
    bool mayAlias(const Function &f, const Instruction &a,
                  const Instruction &b) const;

    /** May a call conflict with a memory access in the caller? */
    bool callMayTouch(const Instruction &call,
                      const Instruction &mem) const;

    /** May a call have any memory side effect at all? */
    bool callHasMemEffects(const Instruction &call) const;

  private:
    struct ModRef
    {
        bool touches_all = true;
        std::set<int32_t> syms;
    };

    bool hintsUsable(const Function &f) const;

    AliasLevel level_;
    std::vector<ModRef> modref_; ///< per function id
};

} // namespace epic

#endif // EPIC_ANALYSIS_ALIAS_H
