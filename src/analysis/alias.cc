#include "analysis/alias.h"

namespace epic {

AliasAnalysis::AliasAnalysis(const Program &prog, AliasLevel level)
    : level_(level)
{
    modref_.resize(prog.funcs.size());
    if (level_ != AliasLevel::Inter)
        return;

    // Initialize per-function direct effects.
    for (size_t fid = 0; fid < prog.funcs.size(); ++fid) {
        const Function *f = prog.func(static_cast<int>(fid));
        ModRef &mr = modref_[fid];
        if (!f) {
            mr.touches_all = false;
            continue;
        }
        mr.touches_all = false;
        if (f->attr & kFuncNoPointerAnalysis) {
            mr.touches_all = true;
            continue;
        }
        for (const auto &b : f->blocks) {
            if (!b)
                continue;
            for (const Instruction &inst : b->instrs) {
                if (inst.isMem()) {
                    if (inst.sym_hint >= 0)
                        mr.syms.insert(inst.sym_hint);
                    else
                        mr.touches_all = true;
                } else if (inst.op == Opcode::BR_ICALL) {
                    // Unknown callee: conservative.
                    mr.touches_all = true;
                }
            }
        }
    }

    // Propagate over the direct-call graph to a fixpoint.
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t fid = 0; fid < prog.funcs.size(); ++fid) {
            const Function *f = prog.func(static_cast<int>(fid));
            if (!f || modref_[fid].touches_all)
                continue;
            ModRef &mr = modref_[fid];
            for (const auto &b : f->blocks) {
                if (!b)
                    continue;
                for (const Instruction &inst : b->instrs) {
                    if (inst.op != Opcode::BR_CALL || inst.callee < 0)
                        continue;
                    const ModRef &cmr = modref_[inst.callee];
                    if (cmr.touches_all) {
                        if (!mr.touches_all) {
                            mr.touches_all = true;
                            changed = true;
                        }
                    } else {
                        for (int32_t s : cmr.syms) {
                            if (mr.syms.insert(s).second)
                                changed = true;
                        }
                    }
                }
            }
        }
    }
}

bool
AliasAnalysis::hintsUsable(const Function &f) const
{
    if (level_ == AliasLevel::None)
        return false;
    // Library functions are "gcc-compiled": no pointer analysis either.
    if (f.attr & (kFuncNoPointerAnalysis | kFuncLibrary))
        return false;
    return true;
}

bool
AliasAnalysis::mayAlias(const Function &f, const Instruction &a,
                        const Instruction &b) const
{
    if (!hintsUsable(f))
        return true;

    // Different known symbols never overlap.
    if (a.sym_hint >= 0 && b.sym_hint >= 0 && a.sym_hint != b.sym_hint)
        return false;

    // Distinct alias groups were promised disjoint by the analysis.
    if (a.alias_group >= 0 && b.alias_group >= 0 &&
        a.alias_group != b.alias_group) {
        return false;
    }

    return true;
}

bool
AliasAnalysis::callMayTouch(const Instruction &call,
                            const Instruction &mem) const
{
    if (level_ != AliasLevel::Inter)
        return true;
    if (call.op == Opcode::BR_ICALL || call.callee < 0)
        return true;
    const ModRef &mr = modref_[call.callee];
    if (mr.touches_all)
        return true;
    if (mem.sym_hint < 0)
        return !mr.syms.empty();
    return mr.syms.count(mem.sym_hint) != 0;
}

bool
AliasAnalysis::callHasMemEffects(const Instruction &call) const
{
    if (level_ != AliasLevel::Inter)
        return true;
    if (call.op == Opcode::BR_ICALL || call.callee < 0)
        return true;
    const ModRef &mr = modref_[call.callee];
    return mr.touches_all || !mr.syms.empty();
}

} // namespace epic
