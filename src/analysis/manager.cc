#include "analysis/manager.h"

#include <cstdlib>

#include "support/logging.h"

namespace epic {

const char *
analysisKindName(AnalysisKind k)
{
    switch (k) {
      case AnalysisKind::Cfg: return "cfg";
      case AnalysisKind::Dom: return "dom";
      case AnalysisKind::Liveness: return "liveness";
      case AnalysisKind::Loops: return "loops";
      case AnalysisKind::PredRel: return "predrel";
    }
    return "?";
}

const char *
analysisModeName(AnalysisMode m)
{
    switch (m) {
      case AnalysisMode::Cached: return "cached";
      case AnalysisMode::ForceRecompute: return "recompute";
      case AnalysisMode::StaleCheck: return "stale-check";
    }
    return "?";
}

bool
parseAnalysisMode(const std::string &s, AnalysisMode *out)
{
    if (s == "cached") {
        *out = AnalysisMode::Cached;
    } else if (s == "recompute" || s == "force-recompute") {
        *out = AnalysisMode::ForceRecompute;
    } else if (s == "stale-check" || s == "stalecheck") {
        *out = AnalysisMode::StaleCheck;
    } else {
        return false;
    }
    return true;
}

AnalysisMode
envAnalysisMode()
{
    static const AnalysisMode kMode = [] {
        const char *e = std::getenv("EPICLAB_ANALYSIS_MODE");
        if (!e || !*e)
            return AnalysisMode::Cached;
        AnalysisMode m;
        if (!parseAnalysisMode(e, &m)) {
            epic_fatal("EPICLAB_ANALYSIS_MODE: unknown mode '", e,
                       "' (cached|recompute|stale-check)");
        }
        return m;
    }();
    return kMode;
}

AnalysisCounters &
AnalysisCounters::operator+=(const AnalysisCounters &o)
{
    for (int i = 0; i < kNumAnalysisKinds; ++i) {
        hits[i] += o.hits[i];
        misses[i] += o.misses[i];
        invalidations[i] += o.invalidations[i];
    }
    return *this;
}

int64_t
AnalysisCounters::totalHits() const
{
    int64_t t = 0;
    for (int64_t v : hits)
        t += v;
    return t;
}

int64_t
AnalysisCounters::totalMisses() const
{
    int64_t t = 0;
    for (int64_t v : misses)
        t += v;
    return t;
}

int64_t
AnalysisCounters::totalInvalidations() const
{
    int64_t t = 0;
    for (int64_t v : invalidations)
        t += v;
    return t;
}

bool
AnalysisCounters::any() const
{
    return totalHits() || totalMisses() || totalInvalidations();
}

AnalysisCounters
operator-(AnalysisCounters a, const AnalysisCounters &b)
{
    for (int i = 0; i < kNumAnalysisKinds; ++i) {
        a.hits[i] -= b.hits[i];
        a.misses[i] -= b.misses[i];
        a.invalidations[i] -= b.invalidations[i];
    }
    return a;
}

namespace {

// ---- Structural equality for the stale checker ----
// Exact comparisons (doubles included): a fresh recompute of unchanged
// IR is deterministic, so any difference at all means the cache is
// stale.

bool
sameEdge(const CfgEdge &a, const CfgEdge &b)
{
    return a.from == b.from && a.to == b.to && a.weight == b.weight &&
           a.is_fallthrough == b.is_fallthrough &&
           a.branch_idx == b.branch_idx;
}

bool
sameSpan(Span<const int32_t> a, Span<const int32_t> b)
{
    if (a.size() != b.size())
        return false;
    for (uint32_t i = 0; i < a.size(); ++i)
        if (a[i] != b[i])
            return false;
    return true;
}

bool
sameCfg(const Cfg &a, const Cfg &b)
{
    if (a.maxBlockId() != b.maxBlockId() || !sameSpan(a.rpo(), b.rpo()))
        return false;
    for (int bid = 0; bid < a.maxBlockId(); ++bid) {
        if (a.reachable(bid) != b.reachable(bid))
            return false;
        if (!sameSpan(a.succs(bid), b.succs(bid)) ||
            !sameSpan(a.preds(bid), b.preds(bid)))
            return false;
        const auto ea = a.outEdges(bid), eb = b.outEdges(bid);
        if (ea.size() != eb.size())
            return false;
        for (size_t i = 0; i < ea.size(); ++i)
            if (!sameEdge(ea[i], eb[i]))
                return false;
    }
    return true;
}

bool
sameDom(const DomTree &a, const DomTree &b, int nblocks)
{
    // idom() fully determines the tree (dominates() walks idom chains).
    for (int bid = 0; bid < nblocks; ++bid)
        if (a.idom(bid) != b.idom(bid))
            return false;
    return true;
}

/** Caller guarantees both were computed over same-sized CFGs. */
bool
sameLiveness(const Liveness &a, const Liveness &b, int nblocks)
{
    for (int bid = 0; bid < nblocks; ++bid)
        if (a.liveIn(bid) != b.liveIn(bid) ||
            a.liveOut(bid) != b.liveOut(bid))
            return false;
    return true;
}

bool
sameLoop(const Loop &a, const Loop &b)
{
    return a.header == b.header && a.blocks == b.blocks &&
           a.latches == b.latches && a.exits == b.exits &&
           a.avg_trip == b.avg_trip &&
           a.header_weight == b.header_weight && a.parent == b.parent;
}

bool
sameLoops(const LoopForest &a, const LoopForest &b)
{
    if (a.loops().size() != b.loops().size())
        return false;
    for (size_t i = 0; i < a.loops().size(); ++i)
        if (!sameLoop(a.loops()[i], b.loops()[i]))
            return false;
    return true;
}

} // namespace

AnalysisManager::AnalysisManager(const Function &f,
                                 const AliasAnalysis *aa,
                                 AnalysisMode mode)
    : f_(&f), aa_(aa), mode_(mode), arena_(size_t{32} << 10),
      base_(arena_.mark())
{
}

void
AnalysisManager::maybeRollbackArena()
{
    // Cfg and DomTree are the arena-resident analyses today; once both
    // are gone nothing points into the arena and a single watermark
    // rollback reclaims every table (and all abandoned garbage from
    // in-place refreshes) for the next compute cycle.
    if (!cfg_ && !dom_ && arena_.liveBytes() > base_.live)
        arena_.rollbackTo(base_);
}

const AliasAnalysis &
AnalysisManager::alias() const
{
    epic_assert(aa_, "AnalysisManager for ", f_->name,
                " was constructed without an alias analysis");
    return *aa_;
}

void
AnalysisManager::stalePanic(AnalysisKind k) const
{
    epic_panic("stale-analysis checker: cached ", analysisKindName(k),
               " for function '", f_->name,
               "' diverges from a fresh recompute",
               pass_.empty() ? "" : " at pass '",
               pass_.empty() ? "" : pass_.c_str(),
               pass_.empty() ? "" : "'",
               " — a transform mutated the IR without invalidating");
}

const Cfg &
AnalysisManager::cfg()
{
    const int idx = static_cast<int>(AnalysisKind::Cfg);
    if (!cfg_) {
        ++counters_.misses[idx];
        cfg_ = std::make_unique<Cfg>(*f_, &arena_);
        return *cfg_;
    }
    ++counters_.hits[idx];
    if (mode_ == AnalysisMode::ForceRecompute) {
        // Assign in place: outstanding references (and the cached
        // Liveness's internal Cfg pointer) stay valid and see the
        // freshly recomputed value. The old tables become arena garbage
        // until the next full-drop rollback.
        *cfg_ = Cfg(*f_, &arena_);
    } else if (mode_ == AnalysisMode::StaleCheck) {
        Cfg fresh(*f_);
        if (!sameCfg(*cfg_, fresh))
            stalePanic(AnalysisKind::Cfg);
    }
    return *cfg_;
}

const DomTree &
AnalysisManager::domTree()
{
    const int idx = static_cast<int>(AnalysisKind::Dom);
    if (!dom_) {
        const Cfg &c = cfg(); // counted dependency query
        ++counters_.misses[idx];
        dom_ = std::make_unique<DomTree>(c, &arena_);
        return *dom_;
    }
    ++counters_.hits[idx];
    if (mode_ == AnalysisMode::ForceRecompute) {
        // Scratch Cfg, uncounted: hit-path recomputes must not perturb
        // the counters relative to Cached mode.
        Cfg scratch(*f_);
        *dom_ = DomTree(scratch, &arena_);
    } else if (mode_ == AnalysisMode::StaleCheck) {
        Cfg scratch(*f_);
        DomTree fresh(scratch);
        if (!sameDom(*dom_, fresh, scratch.maxBlockId()))
            stalePanic(AnalysisKind::Dom);
    }
    return *dom_;
}

const Liveness &
AnalysisManager::liveness()
{
    const int idx = static_cast<int>(AnalysisKind::Liveness);
    if (!live_) {
        const Cfg &c = cfg(); // counted dependency query
        ++counters_.misses[idx];
        live_ = std::make_unique<Liveness>(c);
        return *live_;
    }
    ++counters_.hits[idx];
    // Invariant (by cascade): Liveness cached implies Cfg cached.
    epic_assert(cfg_, "cached Liveness without cached Cfg in ", f_->name);
    if (mode_ == AnalysisMode::ForceRecompute) {
        // Refresh the dependency in place first so the recomputed
        // Liveness points at (and reads) current-IR structure.
        *cfg_ = Cfg(*f_, &arena_);
        *live_ = Liveness(*cfg_);
    } else if (mode_ == AnalysisMode::StaleCheck) {
        Cfg scratch(*f_);
        if (!sameCfg(*cfg_, scratch))
            stalePanic(AnalysisKind::Cfg); // the dependency itself
        Liveness fresh(scratch);
        if (!sameLiveness(*live_, fresh, scratch.maxBlockId()))
            stalePanic(AnalysisKind::Liveness);
    }
    return *live_;
}

const LoopForest &
AnalysisManager::loopForest()
{
    const int idx = static_cast<int>(AnalysisKind::Loops);
    if (!loops_) {
        const Cfg &c = cfg();      // counted
        const DomTree &d = domTree(); // counted
        ++counters_.misses[idx];
        loops_ = std::make_unique<LoopForest>(c, d);
        return *loops_;
    }
    ++counters_.hits[idx];
    if (mode_ == AnalysisMode::ForceRecompute) {
        Cfg scratch(*f_);
        DomTree sdom(scratch);
        *loops_ = LoopForest(scratch, sdom);
    } else if (mode_ == AnalysisMode::StaleCheck) {
        Cfg scratch(*f_);
        DomTree sdom(scratch);
        LoopForest fresh(scratch, sdom);
        if (!sameLoops(*loops_, fresh))
            stalePanic(AnalysisKind::Loops);
    }
    return *loops_;
}

const PredRelations &
AnalysisManager::predRelations(int bid)
{
    const BasicBlock *b = f_->block(bid);
    epic_assert(b, "predRelations: no block ", bid, " in ", f_->name);
    const int idx = static_cast<int>(AnalysisKind::PredRel);
    auto it = predrel_.find(bid);
    if (it == predrel_.end()) {
        ++counters_.misses[idx];
        it = predrel_.emplace(bid, PredRelations(*b)).first;
        return it->second;
    }
    ++counters_.hits[idx];
    if (mode_ == AnalysisMode::ForceRecompute) {
        it->second = PredRelations(*b);
    } else if (mode_ == AnalysisMode::StaleCheck) {
        PredRelations fresh(*b);
        if (!(it->second == fresh))
            stalePanic(AnalysisKind::PredRel);
    }
    return it->second;
}

void
AnalysisManager::dropKind(AnalysisKind k)
{
    const int idx = static_cast<int>(k);
    switch (k) {
      case AnalysisKind::Cfg:
        if (cfg_) {
            cfg_.reset();
            ++counters_.invalidations[idx];
            maybeRollbackArena();
        }
        break;
      case AnalysisKind::Dom:
        if (dom_) {
            dom_.reset();
            ++counters_.invalidations[idx];
            maybeRollbackArena();
        }
        break;
      case AnalysisKind::Liveness:
        if (live_) {
            live_.reset();
            ++counters_.invalidations[idx];
        }
        break;
      case AnalysisKind::Loops:
        if (loops_) {
            loops_.reset();
            ++counters_.invalidations[idx];
        }
        break;
      case AnalysisKind::PredRel:
        if (!predrel_.empty()) {
            counters_.invalidations[idx] +=
                static_cast<int64_t>(predrel_.size());
            predrel_.clear();
        }
        break;
    }
}

void
AnalysisManager::invalidateAll()
{
    // Liveness before Cfg: it points into the cached Cfg.
    dropKind(AnalysisKind::Liveness);
    dropKind(AnalysisKind::Loops);
    dropKind(AnalysisKind::Dom);
    dropKind(AnalysisKind::Cfg);
    dropKind(AnalysisKind::PredRel);
}

void
AnalysisManager::invalidate(AnalysisKind k)
{
    switch (k) {
      case AnalysisKind::Cfg:
        dropKind(AnalysisKind::Liveness);
        dropKind(AnalysisKind::Loops);
        dropKind(AnalysisKind::Dom);
        dropKind(AnalysisKind::Cfg);
        break;
      case AnalysisKind::Dom:
        dropKind(AnalysisKind::Loops);
        dropKind(AnalysisKind::Dom);
        break;
      case AnalysisKind::Liveness:
      case AnalysisKind::Loops:
      case AnalysisKind::PredRel:
        dropKind(k);
        break;
    }
}

void
AnalysisManager::invalidateAllExcept(AnalysisSet preserved)
{
    if (!(preserved & analysisBit(AnalysisKind::Cfg)))
        preserved &= ~analysisBit(AnalysisKind::Liveness);
    for (int i = 0; i < kNumAnalysisKinds; ++i) {
        const AnalysisKind k = static_cast<AnalysisKind>(i);
        if (!(preserved & analysisBit(k)))
            dropKind(k);
    }
}

bool
AnalysisManager::isCached(AnalysisKind k) const
{
    switch (k) {
      case AnalysisKind::Cfg: return cfg_ != nullptr;
      case AnalysisKind::Dom: return dom_ != nullptr;
      case AnalysisKind::Liveness: return live_ != nullptr;
      case AnalysisKind::Loops: return loops_ != nullptr;
      case AnalysisKind::PredRel: return !predrel_.empty();
    }
    return false;
}

int
pruneUnreachableBlocks(Function &f, AnalysisManager &am)
{
    int removed = 0;
    {
        const Cfg &cfg = am.cfg();
        for (int bid = 0; bid < static_cast<int>(f.blocks.size());
             ++bid) {
            if (f.block(bid) && !cfg.reachable(bid)) {
                f.eraseBlock(bid);
                ++removed;
            }
        }
    }
    if (removed > 0)
        am.invalidateAll();
    return removed;
}

} // namespace epic
