/**
 * @file
 * Local predicate-relation analysis (a lightweight stand-in for IMPACT's
 * BDD-based predicate analysis, reference [27] of the paper).
 *
 * Tracks, within one block, which predicate pairs are *disjoint* (never
 * simultaneously true). The scheduler uses disjointness to drop
 * output/anti dependences between instructions guarded by complementary
 * predicates and to allow memory operations on mutually exclusive paths
 * of a hyperblock to be reordered — the property that makes if-converted
 * regions schedule well.
 *
 * Soundness: a (p_t, p_f) pair from a compare is recorded as disjoint
 * only when the compare is unconditional or unc-type (an unc compare
 * clears both destinations when its guard is false, so the pair can
 * never be simultaneously true); the relation is killed at any other
 * write to either predicate.
 */
#ifndef EPIC_ANALYSIS_PREDREL_H
#define EPIC_ANALYSIS_PREDREL_H

#include <set>
#include <utility>
#include <vector>

#include "ir/basic_block.h"

namespace epic {

/** Disjointness facts for one block, position-sensitive. */
class PredRelations
{
  public:
    explicit PredRelations(const BasicBlock &b);

    /**
     * Are predicates p and q disjoint at instruction position `pos`
     * (i.e., valid for instructions at indices >= pos)?
     */
    bool disjointAt(int pos, Reg p, Reg q) const;

    /** Structural equality (the stale-analysis checker's diff). */
    bool
    operator==(const PredRelations &o) const
    {
        if (facts_.size() != o.facts_.size())
            return false;
        for (size_t i = 0; i < facts_.size(); ++i) {
            const Fact &x = facts_[i], &y = o.facts_[i];
            if (!(x.a == y.a) || !(x.b == y.b) || x.from != y.from ||
                x.to != y.to)
                return false;
        }
        return true;
    }

  private:
    struct Fact
    {
        Reg a, b;
        int from; ///< first position where the fact holds
        int to;   ///< last position (inclusive)
    };
    std::vector<Fact> facts_;
};

} // namespace epic

#endif // EPIC_ANALYSIS_PREDREL_H
