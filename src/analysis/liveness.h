/**
 * @file
 * Predicate-aware backward liveness analysis.
 *
 * A guarded definition may not execute, so it does not kill its
 * destination (the classic conservative treatment for predicated code,
 * cf. predicate-aware dataflow in the paper's references [27][28]).
 * Liveness drives dead-code elimination and register allocation.
 */
#ifndef EPIC_ANALYSIS_LIVENESS_H
#define EPIC_ANALYSIS_LIVENESS_H

#include <unordered_set>
#include <vector>

#include "analysis/cfg.h"

namespace epic {

using RegSet = std::unordered_set<Reg>;

/**
 * Per-instruction uses: all register sources plus the guard. And/or-type
 * parallel compares conditionally *merge* into their destinations (they
 * write only when the condition fires), so their destinations count as
 * uses as well.
 */
void instrUses(const Instruction &inst, std::vector<Reg> &out);
/** Per-instruction defs: the destinations. */
void instrDefs(const Instruction &inst, std::vector<Reg> &out);

/**
 * True when the instruction's destinations are written on every
 * execution of the instruction: an always-true guard (or an unc-type
 * compare, which clears its destinations even when squashed), and not
 * an and/or-type compare (which writes only when its condition fires).
 * Only such defs kill a live range.
 */
bool defsAreUnconditional(const Instruction &inst);

/** Block-level live-in/live-out sets. */
class Liveness
{
  public:
    explicit Liveness(const Cfg &cfg);

    const RegSet &liveIn(int bid) const { return live_in_[bid]; }
    const RegSet &liveOut(int bid) const { return live_out_[bid]; }

    /**
     * Registers live immediately *before* instruction `idx` of block
     * `bid` (computed by walking back from live-out; O(block size)).
     */
    RegSet liveBefore(int bid, int idx) const;

  private:
    const Cfg *cfg_;
    std::vector<RegSet> live_in_;
    std::vector<RegSet> live_out_;
};

} // namespace epic

#endif // EPIC_ANALYSIS_LIVENESS_H
