/**
 * @file
 * Natural-loop detection from back edges (dominator based).
 *
 * Used by loop peeling, unrolling, LICM and the modulo scheduler. Each
 * loop records its header, body blocks, back-edge sources ("latches"),
 * exit edges, and a profile-derived average trip count — the quantity the
 * peeling heuristic keys on (the paper peels loops that "typically execute
 * exactly once").
 */
#ifndef EPIC_ANALYSIS_LOOPS_H
#define EPIC_ANALYSIS_LOOPS_H

#include <set>
#include <vector>

#include "analysis/cfg.h"
#include "analysis/dom.h"

namespace epic {

/** One natural loop. */
struct Loop
{
    int header = -1;
    std::set<int> blocks;       ///< body including header
    std::vector<int> latches;   ///< back-edge sources
    /// Edges leaving the loop: (from-block, to-block).
    std::vector<std::pair<int, int>> exits;
    /// Profile: average iterations per entry (0 when no profile).
    double avg_trip = 0.0;
    /// Profile: times the header executed.
    double header_weight = 0.0;
    /// Loop nesting parent index in the enclosing LoopForest (-1: top).
    int parent = -1;
};

/** All natural loops of a function (irreducible regions are skipped). */
class LoopForest
{
  public:
    LoopForest(const Cfg &cfg, const DomTree &dom);

    const std::vector<Loop> &loops() const { return loops_; }

    /** Innermost loop containing a block (-1 if none). */
    int innermostLoopOf(int bid) const;

  private:
    std::vector<Loop> loops_;
};

} // namespace epic

#endif // EPIC_ANALYSIS_LOOPS_H
