#include "analysis/cfg.h"

#include <algorithm>

#include "support/logging.h"

namespace epic {

Cfg::Cfg(const Function &f) : f_(&f)
{
    int n = static_cast<int>(f.blocks.size());
    succs_.resize(n);
    preds_.resize(n);
    out_edges_.resize(n);
    reach_.assign(n, false);

    for (int bid = 0; bid < n; ++bid) {
        const BasicBlock *b = f.block(bid);
        if (!b)
            continue;

        // Walk instructions; accumulate side-exit weights so the
        // fall-through residue is correct.
        double remaining = b->weight;
        bool ended = false;
        for (size_t i = 0; i < b->instrs.size(); ++i) {
            const Instruction &inst = b->instrs[i];
            bool is_transfer = (inst.op == Opcode::BR ||
                                inst.op == Opcode::CHK_S) &&
                               inst.target >= 0;
            if (!is_transfer)
                continue;
            CfgEdge e;
            e.from = bid;
            e.to = inst.target;
            e.branch_idx = static_cast<int>(i);
            e.weight = std::min(inst.prof_taken, remaining);
            remaining -= e.weight;
            out_edges_[bid].push_back(e);
            if (inst.op == Opcode::BR && !inst.hasGuard()) {
                ended = true;
                break; // unconditional: nothing after executes
            }
        }
        if (!ended && b->fallthrough >= 0) {
            CfgEdge e;
            e.from = bid;
            e.to = b->fallthrough;
            e.is_fallthrough = true;
            e.weight = std::max(remaining, 0.0);
            out_edges_[bid].push_back(e);
        }

        for (const CfgEdge &e : out_edges_[bid]) {
            if (std::find(succs_[bid].begin(), succs_[bid].end(), e.to) ==
                succs_[bid].end()) {
                succs_[bid].push_back(e.to);
            }
        }
    }

    for (int bid = 0; bid < n; ++bid)
        for (int s : succs_[bid])
            if (s >= 0 && s < n)
                preds_[s].push_back(bid);

    // Reverse post-order via iterative DFS.
    std::vector<int> post;
    std::vector<int> state(n, 0); // 0 unvisited, 1 on stack, 2 done
    if (f.block(f.entry)) {
        std::vector<std::pair<int, size_t>> stack;
        stack.push_back({f.entry, 0});
        state[f.entry] = 1;
        reach_[f.entry] = true;
        while (!stack.empty()) {
            auto &[bid, idx] = stack.back();
            if (idx < succs_[bid].size()) {
                int s = succs_[bid][idx++];
                if (s >= 0 && s < n && f.block(s) && state[s] == 0) {
                    state[s] = 1;
                    reach_[s] = true;
                    stack.push_back({s, 0});
                }
            } else {
                state[bid] = 2;
                post.push_back(bid);
                stack.pop_back();
            }
        }
    }
    rpo_.assign(post.rbegin(), post.rend());
}

int
pruneUnreachableBlocks(Function &f)
{
    Cfg cfg(f);
    int removed = 0;
    for (int bid = 0; bid < static_cast<int>(f.blocks.size()); ++bid) {
        if (f.block(bid) && !cfg.reachable(bid)) {
            f.eraseBlock(bid);
            ++removed;
        }
    }
    return removed;
}

} // namespace epic
