#include "analysis/cfg.h"

#include <algorithm>

#include "support/logging.h"

namespace epic {

Cfg::Cfg(const Function &f, Arena *arena) : f_(&f)
{
    if (!arena) {
        // Standalone: size the first chunk for a mid-sized function so
        // typical CFGs allocate exactly one chunk.
        own_ = std::make_unique<Arena>(size_t{16} << 10);
        arena = own_.get();
    }
    Arena &a = *arena;

    n_ = static_cast<int32_t>(f.blocks.size());
    const int n = n_;
    succ_off_ = a.allocArray<int32_t>(n + 1);
    pred_off_ = a.allocArray<int32_t>(n + 1);
    edge_off_ = a.allocArray<int32_t>(n + 1);
    reach_ = a.allocArray<uint8_t>(n);
    std::fill(reach_, reach_ + n, uint8_t{0});

    // Accumulate edges and deduped successors per block, in block
    // order, so each block's slice is contiguous (CSR).
    ArenaVec<CfgEdge> edges(&a);
    ArenaVec<int32_t> succs(&a);
    edges.reserve(static_cast<uint32_t>(2 * n + 4));
    succs.reserve(static_cast<uint32_t>(2 * n + 4));

    for (int bid = 0; bid < n; ++bid) {
        edge_off_[bid] = static_cast<int32_t>(edges.size());
        succ_off_[bid] = static_cast<int32_t>(succs.size());
        const BasicBlock *b = f.block(bid);
        if (!b)
            continue;

        // Walk instructions; accumulate side-exit weights so the
        // fall-through residue is correct.
        double remaining = b->weight;
        bool ended = false;
        for (size_t i = 0; i < b->instrs.size(); ++i) {
            const Instruction &inst = b->instrs[i];
            bool is_transfer = (inst.op == Opcode::BR ||
                                inst.op == Opcode::CHK_S) &&
                               inst.target >= 0;
            if (!is_transfer)
                continue;
            CfgEdge e;
            e.from = bid;
            e.to = inst.target;
            e.branch_idx = static_cast<int>(i);
            e.weight = std::min(inst.prof_taken, remaining);
            remaining -= e.weight;
            edges.push_back(e);
            if (inst.op == Opcode::BR && !inst.hasGuard()) {
                ended = true;
                break; // unconditional: nothing after executes
            }
        }
        if (!ended && b->fallthrough >= 0) {
            CfgEdge e;
            e.from = bid;
            e.to = b->fallthrough;
            e.is_fallthrough = true;
            e.weight = std::max(remaining, 0.0);
            edges.push_back(e);
        }

        for (uint32_t k = edge_off_[bid]; k < edges.size(); ++k) {
            const int32_t to = edges[k].to;
            bool dup = false;
            for (uint32_t s = succ_off_[bid]; s < succs.size(); ++s)
                if (succs[s] == to) {
                    dup = true;
                    break;
                }
            if (!dup)
                succs.push_back(to);
        }
    }
    edge_off_[n] = static_cast<int32_t>(edges.size());
    succ_off_[n] = static_cast<int32_t>(succs.size());
    edge_dat_ = edges.data();
    succ_dat_ = succs.data();

    // Predecessors: degree count, prefix sums, then fill (this yields
    // ascending pred order per block, matching the historical build).
    pred_dat_ = a.allocArray<int32_t>(succs.size());
    std::fill(pred_off_, pred_off_ + n + 1, 0);
    for (uint32_t k = 0; k < succs.size(); ++k) {
        const int32_t s = succs[k];
        if (s >= 0 && s < n)
            ++pred_off_[s + 1];
    }
    for (int bid = 0; bid < n; ++bid)
        pred_off_[bid + 1] += pred_off_[bid];
    int32_t *cursor = a.allocArray<int32_t>(n);
    std::copy(pred_off_, pred_off_ + n, cursor);
    for (int bid = 0; bid < n; ++bid)
        for (int32_t s : this->succs(bid))
            if (s >= 0 && s < n)
                pred_dat_[cursor[s]++] = bid;

    // Reverse post-order via iterative DFS (arena scratch).
    struct DfsFrame
    {
        int32_t bid;
        int32_t idx;
    };
    int32_t *post = a.allocArray<int32_t>(n);
    int post_len = 0;
    uint8_t *state = a.allocArray<uint8_t>(n); // 0 unvisited 1 open 2 done
    std::fill(state, state + n, uint8_t{0});
    DfsFrame *stack = a.allocArray<DfsFrame>(n);
    int depth = 0;
    if (f.block(f.entry)) {
        stack[depth++] = {f.entry, 0};
        state[f.entry] = 1;
        reach_[f.entry] = 1;
        while (depth > 0) {
            DfsFrame &fr = stack[depth - 1];
            auto ss = this->succs(fr.bid);
            if (fr.idx < static_cast<int32_t>(ss.size())) {
                int32_t s = ss[fr.idx++];
                if (s >= 0 && s < n && f.block(s) && state[s] == 0) {
                    state[s] = 1;
                    reach_[s] = 1;
                    stack[depth++] = {s, 0};
                }
            } else {
                state[fr.bid] = 2;
                post[post_len++] = fr.bid;
                --depth;
            }
        }
    }
    rpo_ = a.allocArray<int32_t>(post_len);
    rpo_len_ = static_cast<uint32_t>(post_len);
    for (int i = 0; i < post_len; ++i)
        rpo_[i] = post[post_len - 1 - i];
}

int
pruneUnreachableBlocks(Function &f)
{
    Cfg cfg(f);
    int removed = 0;
    for (int bid = 0; bid < static_cast<int>(f.blocks.size()); ++bid) {
        if (f.block(bid) && !cfg.reachable(bid)) {
            f.eraseBlock(bid);
            ++removed;
        }
    }
    return removed;
}

} // namespace epic
