#include "analysis/predrel.h"

namespace epic {

PredRelations::PredRelations(const BasicBlock &b)
{
    // Open facts: (pair, start position). Closed when either predicate
    // is rewritten.
    struct Open
    {
        Reg a, c;
        int from;
    };
    std::vector<Open> open;

    auto close_touching = [&](Reg r, int pos) {
        for (auto it = open.begin(); it != open.end();) {
            if (it->a == r || it->c == r) {
                if (pos - 1 >= it->from) {
                    facts_.push_back(
                        Fact{it->a, it->c, it->from, pos - 1});
                }
                it = open.erase(it);
            } else {
                ++it;
            }
        }
    };

    for (int i = 0; i < static_cast<int>(b.instrs.size()); ++i) {
        const Instruction &inst = b.instrs[i];
        bool makes_pair = false;
        if ((inst.op == Opcode::CMP || inst.op == Opcode::CMPI ||
             inst.op == Opcode::FCMP) &&
            inst.dests.size() == 2 &&
            (inst.ctype == CmpType::Norm || inst.ctype == CmpType::Unc)) {
            // Norm requires an always-true guard; Unc is safe regardless.
            if (inst.ctype == CmpType::Unc || !inst.hasGuard())
                makes_pair = true;
        }

        // Any write to a predicate kills open facts about it.
        for (const Reg &d : inst.dests)
            if (d.cls == RegClass::Pr)
                close_touching(d, i);

        if (makes_pair) {
            // The pair is disjoint starting right after the compare.
            open.push_back(Open{inst.dests[0], inst.dests[1], i + 1});
        }
    }
    int end = static_cast<int>(b.instrs.size()) - 1;
    for (const Open &o : open)
        if (end >= o.from)
            facts_.push_back(Fact{o.a, o.c, o.from, end});
}

bool
PredRelations::disjointAt(int pos, Reg p, Reg q) const
{
    if (p == q)
        return false;
    for (const Fact &f : facts_) {
        if (((f.a == p && f.b == q) || (f.a == q && f.b == p)) &&
            pos >= f.from && pos <= f.to) {
            return true;
        }
    }
    return false;
}

} // namespace epic
