#include "analysis/loops.h"

#include <algorithm>
#include <map>

namespace epic {

LoopForest::LoopForest(const Cfg &cfg, const DomTree &dom)
{
    // Find back edges: succ dominates pred.
    std::map<int, Loop> by_header;
    for (int b : cfg.rpo()) {
        for (int s : cfg.succs(b)) {
            if (!cfg.reachable(s))
                continue;
            if (dom.dominates(s, b)) {
                Loop &l = by_header[s];
                l.header = s;
                l.latches.push_back(b);
            }
        }
    }

    // Grow each loop body backwards from its latches.
    for (auto &[header, loop] : by_header) {
        loop.blocks.insert(header);
        std::vector<int> work(loop.latches.begin(), loop.latches.end());
        while (!work.empty()) {
            int b = work.back();
            work.pop_back();
            if (loop.blocks.count(b))
                continue;
            loop.blocks.insert(b);
            for (int p : cfg.preds(b))
                if (cfg.reachable(p))
                    work.push_back(p);
        }
        // Exits and profile.
        for (int b : loop.blocks) {
            for (int s : cfg.succs(b))
                if (!loop.blocks.count(s))
                    loop.exits.push_back({b, s});
        }
        const Function &f = cfg.function();
        loop.header_weight =
            f.block(header) ? f.block(header)->weight : 0.0;
        // Entries = header weight minus back-edge weight.
        double back_weight = 0.0;
        for (int latch : loop.latches)
            for (const CfgEdge &e : cfg.outEdges(latch))
                if (e.to == header)
                    back_weight += e.weight;
        double entries = loop.header_weight - back_weight;
        loop.avg_trip =
            entries > 0.5 ? loop.header_weight / entries : 0.0;
        loops_.push_back(loop);
    }

    // Establish nesting: loop A is the parent of B if A's body strictly
    // contains B's and no smaller loop does.
    for (size_t i = 0; i < loops_.size(); ++i) {
        int best = -1;
        size_t best_size = SIZE_MAX;
        for (size_t j = 0; j < loops_.size(); ++j) {
            if (i == j)
                continue;
            if (loops_[j].blocks.size() <= loops_[i].blocks.size())
                continue;
            if (std::includes(loops_[j].blocks.begin(),
                              loops_[j].blocks.end(),
                              loops_[i].blocks.begin(),
                              loops_[i].blocks.end()) &&
                loops_[j].blocks.size() < best_size) {
                best = static_cast<int>(j);
                best_size = loops_[j].blocks.size();
            }
        }
        loops_[i].parent = best;
    }
}

int
LoopForest::innermostLoopOf(int bid) const
{
    int best = -1;
    size_t best_size = SIZE_MAX;
    for (size_t i = 0; i < loops_.size(); ++i) {
        if (loops_[i].blocks.count(bid) &&
            loops_[i].blocks.size() < best_size) {
            best = static_cast<int>(i);
            best_size = loops_[i].blocks.size();
        }
    }
    return best;
}

} // namespace epic
