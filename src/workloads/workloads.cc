/**
 * @file
 * Workload registry (SPEC order).
 */
#include "workloads/workload.h"

namespace epic {

const std::vector<Workload> &
allWorkloads()
{
    static const std::vector<Workload> kSuite = [] {
        std::vector<Workload> v;
        v.push_back(makeGzip());
        v.push_back(makeVpr());
        v.push_back(makeGcc());
        v.push_back(makeMcf());
        v.push_back(makeCrafty());
        v.push_back(makeParser());
        v.push_back(makeEon());
        v.push_back(makePerlbmk());
        v.push_back(makeGap());
        v.push_back(makeVortex());
        v.push_back(makeBzip2());
        v.push_back(makeTwolf());
        return v;
    }();
    return kSuite;
}

const Workload *
findWorkload(const std::string &name)
{
    for (const Workload &w : allWorkloads())
        if (w.name == name)
            return &w;
    return nullptr;
}

} // namespace epic
