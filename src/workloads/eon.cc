/**
 * @file
 * 252.eon stand-in: ray-tracer style virtual dispatch.
 *
 * Signature (paper §3.1): "extensive and often very biased use of
 * indirect calls (monomorphic virtual invocations)". A shader table is
 * invoked through a function token per object; ~85 % of objects share
 * one shader, so indirect-call promotion + inlining carries the ILP
 * gain. Pointer analysis is disabled for the whole benchmark (the
 * paper's C++ limitation), so memory disambiguation is conservative.
 * Shader math leans on the F-unit (integer multiply = xma).
 */
#include "workloads/common.h"

namespace epic {

namespace {

constexpr int64_t kObjects = 20 * 1024;
constexpr int kShaders = 5;

Function *
emitShader(IRBuilder &b, int idx)
{
    std::string name = "shade_" + std::to_string(idx);
    Function *f =
        b.beginFunction(name, 2, kFuncNoPointerAnalysis); // (u, v)
    Reg u = b.param(0);
    Reg v = b.param(1);
    // Lighting-ish arithmetic: multiplies (F-unit) + masks.
    Reg m1 = b.mul(u, v);
    Reg m2 = b.mul(b.addi(u, idx + 3), b.xori(v, idx * 5));
    Reg s = b.add(b.shri(m1, 7), b.shri(m2, 9));
    Reg feat = wl::parallelChains(b, s, 3, 2 + idx, idx * 17);
    s = b.add(s, feat);
    b.ret(b.andi(s, 0xffffffll));
    return f;
}

std::unique_ptr<Program>
build()
{
    auto pp = std::make_unique<Program>();
    Program &p = *pp;
    // object[i] = { shader_id: u64, u: u64, v: u64, pad } (32 bytes)
    int objs = p.addSymbol("eon_objs", kObjects * 32);

    IRBuilder b(p);
    std::vector<Function *> shaders;
    for (int i = 0; i < kShaders; ++i)
        shaders.push_back(emitShader(b, i));

    Function *f = b.beginFunction("main", 0, kFuncNoPointerAnalysis);
    BasicBlock *loop = b.newBlock();
    BasicBlock *done = b.newBlock();
    Reg i = b.gr(), acc = b.gr();
    b.moviTo(i, 0);
    b.moviTo(acc, 0);
    Reg base = b.mova(objs);
    // Function-token table in registers.
    std::vector<Reg> toks;
    for (Function *s : shaders)
        toks.push_back(b.movfn(s));
    b.fallthrough(loop);

    b.setBlock(loop);
    Reg oa = b.add(base, b.shli(i, 5));
    Reg sid = b.ld(oa, 8, MemHint{objs, -1});
    Reg u = b.ld(b.addi(oa, 8), 8, MemHint{objs, -1});
    Reg v = b.ld(b.addi(oa, 16), 8, MemHint{objs, -1});
    // Select the token: tok = toks[sid] via a compare chain (the vtable
    // load in the original; here a token select keeps the icall honest).
    Reg tok = b.gr();
    b.movTo(tok, toks[0]);
    for (int s = 1; s < kShaders; ++s) {
        auto [ps, pns] = b.cmpi(CmpCond::EQ, sid, s);
        (void)pns;
        b.movTo(tok, toks[s], ps);
    }
    Reg r = b.icall(tok, {u, v});
    b.addTo(acc, acc, r);
    Reg mix = b.andi(acc, 0xffffffffll);
    b.movTo(acc, mix);
    b.addiTo(i, i, 1);
    auto [pl, pge] = b.cmpi(CmpCond::LT, i, kObjects);
    (void)pge;
    b.br(pl, loop);
    b.fallthrough(done);

    b.setBlock(done);
    b.ret(acc);
    p.entry_func = f->id;
    return pp;
}

void
writeInput(const Program &p, Memory &mem, InputKind kind)
{
    int objs = -1;
    for (const DataSymbol &s : p.symbols)
        if (s.name == "eon_objs")
            objs = s.id;
    uint64_t base = p.symbolAddr(objs);
    Rng rng(wl::seedFor(kind, 252));
    for (int64_t i = 0; i < kObjects; ++i) {
        // 85% monomorphic dispatch to shader 0.
        uint64_t sid =
            rng.chance(85, 100) ? 0 : 1 + rng.nextBelow(kShaders - 1);
        uint64_t u = rng.nextBelow(1 << 20);
        uint64_t v = rng.nextBelow(1 << 20);
        uint64_t a = base + static_cast<uint64_t>(i) * 32;
        mem.writeBytes(a, reinterpret_cast<const uint8_t *>(&sid), 8);
        mem.writeBytes(a + 8, reinterpret_cast<const uint8_t *>(&u), 8);
        mem.writeBytes(a + 16, reinterpret_cast<const uint8_t *>(&v), 8);
    }
}

} // namespace

Workload
makeEon()
{
    Workload w;
    w.name = "252.eon";
    w.signature =
        "biased virtual dispatch (icall promotion); pointer analysis "
        "disabled";
    w.ref_time = 1300;
    w.build = build;
    w.write_input = writeInput;
    return w;
}

} // namespace epic
