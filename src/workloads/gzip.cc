/**
 * @file
 * 164.gzip stand-in: LZ-style match finding.
 *
 * Signature (paper): compression loops with bit manipulation, strongly
 * biased branches, small-ish working set, very high planned IPC after
 * region formation (the paper reports gzip among the >3.0 planned-IPC
 * benchmarks). The hash-probe hit path and the short match-length inner
 * loop are prime superblock/peeling material.
 */
#include "workloads/common.h"

namespace epic {

namespace {

constexpr int kDataBytes = 96 * 1024;
constexpr int kHashEntries = 4096;
constexpr int kPositions = 48 * 1024;

std::unique_ptr<Program>
build()
{
    auto pp = std::make_unique<Program>();
    Program &p = *pp;
    int data = p.addSymbol("gz_data", kDataBytes + 64);
    int hashtab = p.addSymbol("gz_hash", kHashEntries * 8);

    IRBuilder b(p);
    Function *f = b.beginFunction("main", 0);

    BasicBlock *loop = b.newBlock();
    BasicBlock *probe = b.newBlock();
    BasicBlock *match = b.newBlock();
    BasicBlock *mloop = b.newBlock();
    BasicBlock *mdone = b.newBlock();
    BasicBlock *next = b.newBlock();
    BasicBlock *done = b.newBlock();

    Reg i = b.gr(), acc = b.gr();
    b.moviTo(i, 0);
    b.moviTo(acc, 0);
    Reg dbase = b.mova(data);
    Reg hbase = b.mova(hashtab);
    b.fallthrough(loop);

    // loop: w = *(u32*)(data+i); h = hash(w); cand = hashtab[h];
    //       hashtab[h] = i;
    b.setBlock(loop);
    Reg pa = b.add(dbase, i);
    Reg w = b.ld(pa, 4, MemHint{data, -1});
    Reg h1 = b.xor_(w, b.shri(w, 7));
    Reg h2 = b.xor_(h1, b.shri(w, 13));
    Reg h = b.andi(h2, kHashEntries - 1);
    Reg ha = wl::indexAddr(b, hbase, h, 3);
    Reg cand = b.ld(ha, 8, MemHint{hashtab, -1});
    Reg ip1 = b.addi(i, 1);
    b.st(ha, ip1, 8, MemHint{hashtab, -1}); // store i+1 (0 = empty)
    auto [pc, pnc] = b.cmpi(CmpCond::NE, cand, 0);
    (void)pnc;
    b.br(pc, probe);
    b.fallthrough(next);

    // probe: compare the candidate word (biased: usually a mismatch).
    b.setBlock(probe);
    Reg cm1 = b.subi(cand, 1);
    Reg ca = b.add(dbase, cm1);
    Reg cw = b.ld(ca, 4, MemHint{data, -1});
    auto [peq, pne] = b.cmp(CmpCond::EQ, cw, w);
    (void)pne;
    b.br(peq, match);
    b.fallthrough(next);

    // match: extend the match byte-by-byte (low trip count).
    Reg len = b.gr();
    b.setBlock(match);
    b.moviTo(len, 4);
    b.fallthrough(mloop);

    b.setBlock(mloop);
    Reg ma = b.add(b.add(dbase, i), len);
    Reg mb = b.add(b.add(dbase, cm1), len);
    Reg x1 = b.ld(ma, 1, MemHint{data, -1});
    Reg x2 = b.ld(mb, 1, MemHint{data, -1});
    b.addiTo(len, len, 1);
    // Continue while the bytes match and len < 12: two side exits.
    auto [psame, pdiff] = b.cmp(CmpCond::EQ, x1, x2);
    (void)psame;
    b.br(pdiff, mdone);
    auto [pcap, pnocap] = b.cmpi(CmpCond::GE, len, 12);
    (void)pnocap;
    b.br(pcap, mdone);
    b.jump(mloop);

    b.setBlock(mdone);
    b.addTo(acc, acc, len);
    b.fallthrough(next);

    // next: fold the word into the checksum; advance.
    b.setBlock(next);
    Reg mix = b.xor_(acc, b.shri(w, 3));
    b.movTo(acc, b.andi(mix, 0xffffffffll));
    b.addiTo(i, i, 1);
    auto [pl, pge] = b.cmpi(CmpCond::LT, i, kPositions);
    (void)pge;
    b.br(pl, loop);
    b.fallthrough(done);

    b.setBlock(done);
    b.ret(acc);
    p.entry_func = f->id;
    return pp;
}

void
writeInput(const Program &p, Memory &mem, InputKind kind)
{
    // Text-like bytes: a small alphabet with run structure so hash
    // probes hit occasionally and matches stay short.
    int data = 0, hashtab = 0;
    for (const DataSymbol &s : p.symbols) {
        if (s.name == "gz_data")
            data = s.id;
        if (s.name == "gz_hash")
            hashtab = s.id;
    }
    // Buckets start at 1 (pointing at position 0): candidate addresses
    // are always valid, as in real gzip, whose window pointers always
    // reference the allocated window.
    wl::fillSym64(p, mem, hashtab, kHashEntries, 1,
                  [](uint64_t, Rng &) { return 1; });
    wl::fillSym8(p, mem, data, kDataBytes + 64, wl::seedFor(kind, 164),
                 [](uint64_t i, Rng &rng) -> uint8_t {
                     if (rng.chance(1, 4))
                         return 'e';
                     if (rng.chance(1, 5))
                         return static_cast<uint8_t>('a' + (i % 4));
                     return static_cast<uint8_t>(
                         'a' + rng.nextBelow(19));
                 });
}

} // namespace

Workload
makeGzip()
{
    Workload w;
    w.name = "164.gzip";
    w.signature = "LZ match loop: bit ops, biased branches, high ILP";
    w.ref_time = 1400;
    w.build = build;
    w.write_input = writeInput;
    return w;
}

} // namespace epic
