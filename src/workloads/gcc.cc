/**
 * @file
 * 176.gcc stand-in: many compiler "passes" over an insn stream.
 *
 * Signature (paper §4.3): a very large instruction footprint (thirty
 * distinct pass functions rotated every round thrash the 16 KB L1I),
 * branchy code, and — crucially — pointer/integer *union* operands. A
 * subset of passes dereferences the union under a tag guard; predicate
 * promotion under ILP-CS turns those into speculative loads whose
 * address is junk whenever the tag said "integer": the paper's wild
 * loads, which under the general speculation model walk the kernel's
 * page tables without caching and give gcc its ~20 % kernel time.
 */
#include "workloads/common.h"

namespace epic {

namespace {

constexpr int kPasses = 30;
constexpr int kInsns = 512;      ///< insn records (16 bytes each)
constexpr int kSlice = 16;       ///< insns per pass invocation
constexpr int kRounds = 110;
constexpr int kPoolBytes = 64 * 1024;
// Passes containing the promotable union-dereference pattern.
constexpr int kUnionPasses = 4;

/**
 * One pass function: walks a 16-insn slice; per insn, branches on the
 * tag; union passes deref the operand under the tag guard (promotable);
 * plain passes consume the value on both paths (not promotable).
 * Distinct filler features give each pass its own footprint.
 */
Function *
emitPass(IRBuilder &b, int idx, int insns_sym, bool union_pass)
{
    std::string name = "pass_" + std::to_string(idx);
    Function *f = b.beginFunction(name, 1); // arg: first insn index
    Reg first = b.param(0);
    Reg insns = b.mova(insns_sym);

    BasicBlock *loop = b.newBlock();
    BasicBlock *ptr_bb = union_pass ? nullptr : b.newBlock();
    BasicBlock *int_bb = union_pass ? nullptr : b.newBlock();
    BasicBlock *cont = b.newBlock();
    BasicBlock *done = b.newBlock();

    Reg k = b.gr(), acc = b.gr();
    b.moviTo(k, 0);
    b.moviTo(acc, idx * 101);
    b.fallthrough(loop);

    b.setBlock(loop);
    Reg ii = b.add(first, k);
    Reg ia = b.add(insns, b.shli(ii, 4));
    Reg tag = b.ld(ia, 8, MemHint{insns_sym, -1});
    Reg oa = b.addi(ia, 8);
    Reg operand = b.ld(oa, 8, MemHint{insns_sym, -1});
    auto [p_ptr, p_int] = b.cmpi(CmpCond::EQ, tag, 1);

    if (union_pass) {
        // Promotable guarded dereference: the loaded value is consumed
        // only under the same predicate and dies in this block.
        Reg v = b.gr();
        b.ldTo(v, operand, 8, MemHint{-1, -1}, p_ptr);
        b.addTo(acc, acc, v, p_ptr);
        Reg low = b.andi(operand, 0xffff);
        b.addTo(acc, acc, low, p_int);
        b.fallthrough(cont);
    } else {
        // Proper diamond computing `v` on both paths: if-convertible
        // (the paper's branch-removal fodder) but NOT promotable — the
        // converted load's destination is consumed unguarded at the
        // join, so its guard cannot be weakened and no wild loads
        // appear in these passes.
        (void)p_int;
        Reg v = b.gr();
        b.br(p_ptr, ptr_bb);
        b.fallthrough(int_bb);

        b.setBlock(int_bb);
        Reg low = b.andi(operand, 0xffff);
        b.movTo(v, low);
        b.fallthrough(cont);

        b.setBlock(ptr_bb);
        b.ldTo(v, operand, 8, MemHint{-1, -1});
        {
            Instruction jmp;
            jmp.op = Opcode::BR;
            jmp.target = cont->id;
            b.emit(jmp);
        }
        b.setBlock(cont);
        b.addTo(acc, acc, v);
    }

    b.setBlock(cont);
    // Pass-specific feature computation: four independent chains whose
    // parallelism only a capable scheduler exploits (footprint + ILP).
    Reg feat = wl::parallelChains(b, acc, 4, 3 + idx % 3, idx * 7 + 3);
    b.addTo(acc, acc, b.andi(feat, 0xffff));
    b.addiTo(k, k, 1);
    auto [pl, pge] = b.cmpi(CmpCond::LT, k, kSlice);
    (void)pge;
    b.br(pl, loop);
    b.fallthrough(done);

    b.setBlock(done);
    b.ret(b.andi(acc, 0xffffffffll));
    return f;
}

std::unique_ptr<Program>
build()
{
    auto pp = std::make_unique<Program>();
    Program &p = *pp;
    int insns = p.addSymbol("gcc_insns", kInsns * 16);
    p.addSymbol("gcc_pool", kPoolBytes);

    IRBuilder b(p);
    std::vector<Function *> passes;
    for (int i = 0; i < kPasses; ++i)
        passes.push_back(emitPass(b, i, insns, i < kUnionPasses));

    Function *f = b.beginFunction("main", 0);
    BasicBlock *loop = b.newBlock();
    BasicBlock *done = b.newBlock();
    Reg r = b.gr(), acc = b.gr();
    b.moviTo(r, 0);
    b.moviTo(acc, 0);
    b.fallthrough(loop);

    b.setBlock(loop);
    // Rotate every pass over a sliding insn window each round.
    Reg base_idx = b.andi(b.mul(r, b.movi(7)), kInsns - kSlice - 1);
    for (Function *pass : passes) {
        Reg v = b.call(pass, {base_idx});
        Reg a2 = b.add(acc, v);
        b.movTo(acc, b.andi(a2, 0xffffffffll));
    }
    b.addiTo(r, r, 1);
    auto [pl, pge] = b.cmpi(CmpCond::LT, r, kRounds);
    (void)pge;
    b.br(pl, loop);
    b.fallthrough(done);

    b.setBlock(done);
    b.ret(acc);
    p.entry_func = f->id;
    return pp;
}

void
writeInput(const Program &p, Memory &mem, InputKind kind)
{
    int insns = -1, pool = -1;
    for (const DataSymbol &s : p.symbols) {
        if (s.name == "gcc_insns")
            insns = s.id;
        if (s.name == "gcc_pool")
            pool = s.id;
    }
    uint64_t pool_base = p.symbolAddr(pool);
    uint64_t insn_base = p.symbolAddr(insns);
    Rng rng(wl::seedFor(kind, 176));
    for (int i = 0; i < kInsns; ++i) {
        // Mostly pointer-tagged; ~6% carry junk integers that look
        // like addresses into unmapped space (the pointer/int union).
        bool is_ptr = rng.chance(94, 100);
        uint64_t tag = is_ptr ? 1 : 0;
        uint64_t operand;
        if (is_ptr) {
            operand = pool_base + (rng.nextBelow(kPoolBytes / 8) * 8);
        } else {
            operand = 0x500000000ull + rng.nextBelow(1 << 30) * 8;
        }
        mem.writeBytes(insn_base + static_cast<uint64_t>(i) * 16,
                       reinterpret_cast<const uint8_t *>(&tag), 8);
        mem.writeBytes(insn_base + static_cast<uint64_t>(i) * 16 + 8,
                       reinterpret_cast<const uint8_t *>(&operand), 8);
    }
    // Pool contents.
    wl::fillSym64(p, mem, pool, kPoolBytes / 8, wl::seedFor(kind, 1760),
                  [](uint64_t, Rng &r2) { return r2.nextBelow(4096); });
}

} // namespace

Workload
makeGcc()
{
    Workload w;
    w.name = "176.gcc";
    w.signature =
        "30 rotating passes (L1I thrash) + pointer/int unions -> wild "
        "loads under ILP-CS";
    w.ref_time = 1100;
    w.build = build;
    w.write_input = writeInput;
    return w;
}

} // namespace epic
