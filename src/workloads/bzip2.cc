/**
 * @file
 * 256.bzip2 stand-in: counting/ranking passes over a byte stream.
 *
 * Signature (paper Figure 5 note 7): two per-symbol tables exactly 1 KB
 * apart are written and read back-to-back, so the L1D micropipe sees
 * (spurious) store-to-load-forwarding candidates. When ILP optimization
 * tightens the loop, the store and the conflicting load land closer
 * together and micropipe stalls *grow* with optimization — the paper's
 * bzip2 anomaly.
 */
#include "workloads/common.h"

namespace epic {

namespace {

constexpr int kStream = 192 * 1024;
constexpr int kSteps = 160 * 1024;

std::unique_ptr<Program>
build()
{
    auto pp = std::make_unique<Program>();
    Program &p = *pp;
    int data = p.addSymbol("bz_data", kStream);
    int freq = p.addSymbol("bz_freq", 128 * 8); // 1 KB
    int rank = p.addSymbol("bz_rank", 128 * 8); // next KB: index-collides

    IRBuilder b(p);
    Function *f = b.beginFunction("main", 0);
    BasicBlock *loop = b.newBlock();
    BasicBlock *swap_bb = b.newBlock();
    BasicBlock *cont = b.newBlock();
    BasicBlock *done = b.newBlock();

    Reg i = b.gr(), acc = b.gr();
    b.moviTo(i, 0);
    b.moviTo(acc, 0);
    Reg dbase = b.mova(data);
    Reg fbase = b.mova(freq);
    Reg rbase = b.mova(rank);
    b.fallthrough(loop);

    b.setBlock(loop);
    Reg da = b.add(dbase, i);
    Reg c = b.ld(da, 1, MemHint{data, -1});
    Reg c7 = b.andi(c, 127);
    // Loads first, then the stores: within one iteration there is no
    // store-to-load hazard. The rank table sits exactly 1 KB after
    // freq (same micropipe index), so when optimization tightens the
    // loop, iteration i's stores collide with iteration i+1's loads
    // whenever consecutive symbols repeat — the paper's "spurious
    // store-to-load forwarding detections become more costly" effect.
    Reg fa = wl::indexAddr(b, fbase, c7, 3);
    Reg ra = wl::indexAddr(b, rbase, c7, 3);
    Reg fv = b.ld(fa, 8, MemHint{freq, -1});
    Reg rv = b.ld(ra, 8, MemHint{rank, -1});
    Reg fv1 = b.addi(fv, 1);
    Reg rv2 = b.add(rv, fv1);
    b.st(fa, fv1, 8, MemHint{freq, -1});
    b.st(ra, rv2, 8, MemHint{rank, -1});
    // Sort-flavoured biased branch (move-to-front hit?).
    auto [phit, pmiss] = b.cmpi(CmpCond::LT, fv, 96);
    (void)phit;
    b.br(pmiss, swap_bb);
    b.fallthrough(cont);

    b.setBlock(swap_bb);
    Reg folded = b.xor_(acc, rv2);
    b.movTo(acc, folded);
    b.fallthrough(cont);

    b.setBlock(cont);
    Reg mix = b.add(acc, b.shri(rv2, 3));
    b.movTo(acc, b.andi(mix, 0xffffffffll));
    b.addiTo(i, i, 1);
    auto [pl, pge] = b.cmpi(CmpCond::LT, i, kSteps);
    (void)pge;
    b.br(pl, loop);
    b.fallthrough(done);

    b.setBlock(done);
    b.ret(acc);
    p.entry_func = f->id;
    return pp;
}

void
writeInput(const Program &p, Memory &mem, InputKind kind)
{
    int data = -1;
    for (const DataSymbol &s : p.symbols)
        if (s.name == "bz_data")
            data = s.id;
    wl::fillSym8(p, mem, data, kStream, wl::seedFor(kind, 256),
                 [](uint64_t, Rng &rng) -> uint8_t {
                     // Skewed symbol distribution (post-BWT-like runs).
                     if (rng.chance(3, 8))
                         return 0;
                     return static_cast<uint8_t>(rng.nextBelow(120));
                 });
}

} // namespace

Workload
makeBzip2()
{
    Workload w;
    w.name = "256.bzip2";
    w.signature = "count/rank passes: STLF micropipe grows with ILP";
    w.ref_time = 1500;
    w.build = build;
    w.write_input = writeInput;
    return w;
}

} // namespace epic
