/**
 * @file
 * 254.gap stand-in: computer-algebra vector kernels with *spurious*
 * memory dependences.
 *
 * Signature (paper §2): "pointer analysis is unable to resolve critical
 * spurious dependences in otherwise highly-parallel loops" — the main
 * kernels access disjoint arrays through hint-less references that all
 * land in one alias class, so the scheduler must serialize them (the
 * data-speculation opportunity the paper measures at 5%+). A smaller
 * hinted kernel keeps some ILP gain, and one tagged-union site adds
 * minor wild loads.
 */
#include "workloads/common.h"

namespace epic {

namespace {

constexpr int64_t kVec = 12 * 1024;
constexpr int64_t kRounds = 24;

std::unique_ptr<Program>
build()
{
    auto pp = std::make_unique<Program>();
    Program &p = *pp;
    int va = p.addSymbol("gap_a", kVec * 8);
    int vb = p.addSymbol("gap_b", kVec * 8);
    int vc = p.addSymbol("gap_c", kVec * 8);
    int tags = p.addSymbol("gap_tags", kVec * 16);

    IRBuilder b(p);
    Function *f = b.beginFunction("main", 0);
    BasicBlock *round = b.newBlock();
    BasicBlock *loop1 = b.newBlock();
    BasicBlock *loop2 = b.newBlock();
    BasicBlock *loop3 = b.newBlock();
    BasicBlock *next = b.newBlock();
    BasicBlock *done = b.newBlock();

    Reg r = b.gr(), acc = b.gr(), i = b.gr();
    b.moviTo(r, 0);
    b.moviTo(acc, 0);
    Reg a = b.mova(va);
    Reg bb_ = b.mova(vb);
    Reg c = b.mova(vc);
    Reg tg = b.mova(tags);
    b.fallthrough(round);

    b.setBlock(round);
    b.moviTo(i, 0);
    b.fallthrough(loop1);

    // Kernel 1 (the paper's story): a[i] = b[i] + c[i] through
    // hint-less references — every access shares alias group 7, so the
    // loads and the store serialize although they never overlap.
    b.setBlock(loop1);
    {
        Reg off = b.shli(i, 3);
        Reg ba = b.add(bb_, off);
        Reg ca = b.add(c, off);
        Reg aa = b.add(a, off);
        Reg x = b.ld(ba, 8, MemHint{-1, 7});
        Reg y = b.ld(ca, 8, MemHint{-1, 7});
        Reg s = b.add(x, y);
        b.st(aa, s, 8, MemHint{-1, 7});
        b.addiTo(i, i, 1);
        auto [pl, pge] = b.cmpi(CmpCond::LT, i, kVec / 2);
        (void)pge;
        b.br(pl, loop1);
        b.fallthrough(loop2);
    }

    // Kernel 2: the same shape with precise hints — fully parallel.
    b.setBlock(loop2);
    b.moviTo(i, 0);
    BasicBlock *l2body = b.newBlock();
    b.fallthrough(l2body);
    b.setBlock(l2body);
    {
        Reg off = b.shli(i, 3);
        Reg ba = b.add(bb_, off);
        Reg ca = b.add(c, off);
        Reg aa = b.add(a, off);
        Reg x = b.ld(ba, 8, MemHint{vb, -1});
        Reg y = b.ld(ca, 8, MemHint{vc, -1});
        Reg s = b.xor_(x, b.shri(y, 1));
        b.st(aa, s, 8, MemHint{va, -1});
        Reg f2 = b.add(acc, s);
        b.movTo(acc, b.andi(f2, 0xffffffffll));
        b.addiTo(i, i, 1);
        auto [pl, pge] = b.cmpi(CmpCond::LT, i, kVec / 2);
        (void)pge;
        b.br(pl, l2body);
        b.fallthrough(loop3);
    }

    // Kernel 3: tagged handles -> minor wild loads under promotion.
    b.setBlock(loop3);
    b.moviTo(i, 0);
    BasicBlock *l3body = b.newBlock();
    b.fallthrough(l3body);
    b.setBlock(l3body);
    {
        Reg ta = b.add(tg, b.shli(i, 4));
        Reg tag = b.ld(ta, 8, MemHint{tags, -1});
        Reg hv = b.ld(b.addi(ta, 8), 8, MemHint{tags, -1});
        auto [pptr, pint] = b.cmpi(CmpCond::EQ, tag, 1);
        Reg uv = b.gr();
        b.ldTo(uv, hv, 8, MemHint{-1, -1}, pptr);
        b.addTo(acc, acc, uv, pptr);
        b.addTo(acc, acc, tag, pint);
        b.addiTo(i, i, 8); // stride: only 1/8 of the handles
        auto [pl, pge] = b.cmpi(CmpCond::LT, i, kVec);
        (void)pge;
        b.br(pl, l3body);
        b.fallthrough(next);
    }

    b.setBlock(next);
    Reg sample = b.ld(b.addi(a, 128), 8, MemHint{va, -1});
    Reg f3 = b.add(acc, sample);
    b.movTo(acc, b.andi(f3, 0xffffffffll));
    b.addiTo(r, r, 1);
    auto [pl, pge] = b.cmpi(CmpCond::LT, r, kRounds);
    (void)pge;
    b.br(pl, round);
    b.fallthrough(done);

    b.setBlock(done);
    b.ret(acc);
    p.entry_func = f->id;
    return pp;
}

void
writeInput(const Program &p, Memory &mem, InputKind kind)
{
    int vb = -1, vc = -1, tags = -1;
    for (const DataSymbol &s : p.symbols) {
        if (s.name == "gap_b")
            vb = s.id;
        if (s.name == "gap_c")
            vc = s.id;
        if (s.name == "gap_tags")
            tags = s.id;
    }
    wl::fillSym64(p, mem, vb, kVec, wl::seedFor(kind, 254),
                  [](uint64_t, Rng &r) { return r.nextBelow(1 << 24); });
    wl::fillSym64(p, mem, vc, kVec, wl::seedFor(kind, 2540),
                  [](uint64_t, Rng &r) { return r.nextBelow(1 << 24); });

    uint64_t vb_base = p.symbolAddr(vb);
    uint64_t tag_base = p.symbolAddr(tags);
    Rng rng(wl::seedFor(kind, 2541));
    for (int64_t i = 0; i < kVec; ++i) {
        // Overwhelmingly valid handles; a thin junk tail gives the
        // paper's *minor* gap wild loads under promotion.
        bool is_ptr = !rng.chance(1, 300);
        uint64_t tag = is_ptr ? 1 : 0;
        uint64_t hv = is_ptr
                          ? vb_base + rng.nextBelow(kVec) * 8
                          : 0x580000000ull + rng.nextBelow(1 << 27) * 8;
        uint64_t a = tag_base + static_cast<uint64_t>(i) * 16;
        mem.writeBytes(a, reinterpret_cast<const uint8_t *>(&tag), 8);
        mem.writeBytes(a + 8, reinterpret_cast<const uint8_t *>(&hv), 8);
    }
}

} // namespace

Workload
makeGap()
{
    Workload w;
    w.name = "254.gap";
    w.signature =
        "parallel vector kernels blocked by spurious alias classes; "
        "minor wild loads";
    w.ref_time = 1900;
    w.build = build;
    w.write_input = writeInput;
    return w;
}

} // namespace epic
