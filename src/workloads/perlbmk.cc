/**
 * @file
 * 253.perlbmk stand-in: bytecode interpreter.
 *
 * Signature: an opcode-dispatch loop indirect-calling twelve handlers
 * with a heavily skewed opcode mix; pointer analysis disabled (the
 * paper disables it for perlbmk); a moderate-to-large code footprint;
 * and strong profile sensitivity — the *ref* opcode distribution is
 * deliberately shifted from *train*, which is what makes training on
 * ref worth +10 % in the paper's §4.6 experiment.
 */
#include "workloads/common.h"

namespace epic {

namespace {

constexpr int kHandlers = 12;
constexpr int64_t kProgLen = 4096;
constexpr int64_t kSteps = 60 * 1024;
constexpr int kVmRegs = 64;

Function *
emitHandler(IRBuilder &b, int idx, int vm_sym, int handles_sym)
{
    std::string name = "op_" + std::to_string(idx);
    Function *f =
        b.beginFunction(name, 2, kFuncNoPointerAnalysis); // (a, b)
    Reg x = b.param(0);
    Reg y = b.param(1);
    Reg vm = b.mova(vm_sym);
    // Each handler reads and rewrites one VM slot plus handler-specific
    // arithmetic of varying size.
    Reg slot = b.andi(b.add(x, y), kVmRegs - 1);
    Reg sa = wl::indexAddr(b, vm, slot, 3);
    Reg old = b.ld(sa, 8, MemHint{vm_sym, -1});
    Reg val = old;
    switch (idx % 4) {
      case 0:
        val = b.add(old, b.xori(x, idx * 3));
        break;
      case 1:
        val = b.xor_(old, b.shli(y, (idx % 5) + 1));
        break;
      case 2:
        val = b.sub(b.add(old, x), b.shri(y, 2));
        break;
      default:
        val = b.or_(b.andi(old, 0xffffff), b.shli(x, 3));
        break;
    }
    Reg feat = wl::parallelChains(b, val, 3, 2 + idx / 2, idx * 31);
    val = b.xor_(val, feat);
    if (idx == 3) {
        // Tagged scalar/reference handle (perl SV flavour): dereference
        // under the tag guard — the paper's minor perlbmk wild loads
        // once ILP-CS promotes the guarded load.
        Reg hb2 = b.mova(handles_sym);
        Reg hi = b.andi(b.add(x, y), 255);
        Reg ha = b.add(hb2, b.shli(hi, 4));
        Reg htag = b.ld(ha, 8, MemHint{handles_sym, -1});
        Reg hv = b.ld(b.addi(ha, 8), 8, MemHint{handles_sym, -1});
        auto [pp, pi] = b.cmpi(CmpCond::EQ, htag, 1);
        Reg uv = b.gr();
        b.ldTo(uv, hv, 8, MemHint{-1, -1}, pp);
        Instruction addu;
        addu.op = Opcode::ADD;
        addu.guard = pp;
        addu.dests = {val};
        addu.srcs = {Operand::makeReg(val), Operand::makeReg(uv)};
        b.emit(addu);
        Instruction addi2;
        addi2.op = Opcode::ADD;
        addi2.guard = pi;
        addi2.dests = {val};
        addi2.srcs = {Operand::makeReg(val), Operand::makeReg(htag)};
        b.emit(addi2);
    }
    b.st(sa, val, 8, MemHint{vm_sym, -1});
    b.ret(b.andi(val, 0xffffll));
    return f;
}

std::unique_ptr<Program>
build()
{
    auto pp = std::make_unique<Program>();
    Program &p = *pp;
    // bytecode[i] = { op: u8 }, operands derived from pc.
    int code = p.addSymbol("pl_code", kProgLen);
    int vm = p.addSymbol("pl_vm", kVmRegs * 8);
    int handles = p.addSymbol("pl_handles", 256 * 16);

    IRBuilder b(p);
    std::vector<Function *> handlers;
    for (int i = 0; i < kHandlers; ++i)
        handlers.push_back(emitHandler(b, i, vm, handles));

    Function *f = b.beginFunction("main", 0, kFuncNoPointerAnalysis);
    BasicBlock *loop = b.newBlock();
    BasicBlock *done = b.newBlock();
    Reg i = b.gr(), pc = b.gr(), acc = b.gr();
    b.moviTo(i, 0);
    b.moviTo(pc, 0);
    b.moviTo(acc, 0);
    Reg cbase = b.mova(code);
    std::vector<Reg> toks;
    for (Function *h : handlers)
        toks.push_back(b.movfn(h));
    b.fallthrough(loop);

    b.setBlock(loop);
    Reg ca = b.add(cbase, pc);
    Reg op = b.ld(ca, 1, MemHint{code, -1});
    Reg tok = b.gr();
    b.movTo(tok, toks[0]);
    for (int h = 1; h < kHandlers; ++h) {
        auto [ph, pnh] = b.cmpi(CmpCond::EQ, op, h);
        (void)pnh;
        b.movTo(tok, toks[h], ph);
    }
    Reg r = b.icall(tok, {pc, acc});
    b.addTo(acc, acc, r);
    Reg mix = b.andi(acc, 0xffffffffll);
    b.movTo(acc, mix);
    // pc advances pseudo-randomly but deterministically.
    Reg step = b.addi(b.andi(r, 7), 1);
    Reg npc = b.andi(b.add(pc, step), kProgLen - 1);
    b.movTo(pc, npc);
    b.addiTo(i, i, 1);
    auto [pl, pge] = b.cmpi(CmpCond::LT, i, kSteps);
    (void)pge;
    b.br(pl, loop);
    b.fallthrough(done);

    b.setBlock(done);
    b.ret(acc);
    p.entry_func = f->id;
    return pp;
}

void
writeInput(const Program &p, Memory &mem, InputKind kind)
{
    int code = -1, handles = -1, vm = -1;
    for (const DataSymbol &s : p.symbols) {
        if (s.name == "pl_code")
            code = s.id;
        if (s.name == "pl_handles")
            handles = s.id;
        if (s.name == "pl_vm")
            vm = s.id;
    }
    // Tagged handles: mostly valid references into the VM slots, ~5%
    // junk integers (wild under promotion).
    {
        uint64_t vb = p.symbolAddr(vm);
        uint64_t hb2 = p.symbolAddr(handles);
        Rng hr(wl::seedFor(kind, 2530));
        for (int i = 0; i < 256; ++i) {
            bool junk = hr.chance(1, 20);
            uint64_t tag = junk ? 0 : 1;
            uint64_t hv = junk ? 0x5c0000000ull + hr.nextBelow(1 << 26) * 8
                               : vb + hr.nextBelow(kVmRegs) * 8;
            if (junk)
                hv |= 0; // keep 8-aligned junk: still unmapped
            mem.writeBytes(hb2 + static_cast<uint64_t>(i) * 16,
                           reinterpret_cast<const uint8_t *>(&tag), 8);
            mem.writeBytes(hb2 + static_cast<uint64_t>(i) * 16 + 8,
                           reinterpret_cast<const uint8_t *>(&hv), 8);
        }
    }
    // Train: op 0 dominates (60%). Ref: the hot set shifts toward ops
    // 1-2 — region formation trained on the wrong mix loses ~10%.
    bool train = kind == InputKind::Train;
    wl::fillSym8(p, mem, code, kProgLen, wl::seedFor(kind, 253),
                 [train](uint64_t, Rng &rng) -> uint8_t {
                     if (train) {
                         if (rng.chance(75, 100))
                             return 0;
                         if (rng.chance(50, 100))
                             return 1;
                         return static_cast<uint8_t>(
                             2 + rng.nextBelow(kHandlers - 2));
                     }
                     if (rng.chance(40, 100))
                         return 1;
                     if (rng.chance(45, 100))
                         return 2;
                     if (rng.chance(30, 100))
                         return 0;
                     return static_cast<uint8_t>(
                         3 + rng.nextBelow(kHandlers - 3));
                 });
}

} // namespace

Workload
makePerlbmk()
{
    Workload w;
    w.name = "253.perlbmk";
    w.signature =
        "bytecode dispatch: skewed icalls, profile-sensitive mix, "
        "pointer analysis disabled";
    w.ref_time = 1800;
    w.build = build;
    w.write_input = writeInput;
    return w;
}

} // namespace epic
