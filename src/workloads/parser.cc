/**
 * @file
 * 197.parser stand-in: recursive-descent parsing + dictionary probes.
 *
 * Signature: recursion over a nested token stream (call-stack depth ->
 * register-stack traffic, §4.4), hash-chain dictionary lookups (pointer
 * chasing with short chains), branchy alternatives, and a small
 * pointer/int union site that yields minor wild loads under ILP-CS
 * (the paper lists parser among the lesser wild-load benchmarks).
 */
#include "workloads/common.h"

namespace epic {

namespace {

constexpr int64_t kTokens = 48 * 1024;
constexpr int kDictBuckets = 1024;
constexpr int kDictNodes = 4096;

std::unique_ptr<Program>
build()
{
    auto pp = std::make_unique<Program>();
    Program &p = *pp;
    // token[i] = { kind: u64, value: u64 } (16 bytes)
    //   kind: 0 = word, 1 = open, 2 = close, 3 = tagged union (value is
    //   a pointer into dict_nodes when value&1 == 0, junk otherwise)
    int toks = p.addSymbol("pa_tokens", kTokens * 16);
    // dict buckets: head node index; nodes: {key, next} (16 bytes)
    int buckets = p.addSymbol("pa_buckets", kDictBuckets * 8);
    int dnodes = p.addSymbol("pa_nodes", kDictNodes * 16);

    IRBuilder b(p);

    // ---- dict_lookup(key): hash-chain probe ----
    Function *lookup = b.beginFunction("dict_lookup", 1);
    {
        Reg key = b.param(0);
        Reg bb_ = b.mova(buckets);
        Reg nb = b.mova(dnodes);
        BasicBlock *walk = b.newBlock();
        BasicBlock *found = b.newBlock();
        BasicBlock *miss = b.newBlock();
        Reg h = b.andi(b.xor_(key, b.shri(key, 7)), kDictBuckets - 1);
        Reg ha = wl::indexAddr(b, bb_, h, 3);
        Reg cur = b.gr();
        b.ldTo(cur, ha, 8, MemHint{buckets, -1});
        b.fallthrough(walk);

        b.setBlock(walk);
        auto [pnil, pok] = b.cmpi(CmpCond::EQ, cur, 0);
        (void)pok;
        b.br(pnil, miss);
        Reg na = b.add(nb, b.shli(b.subi(cur, 1), 4));
        Reg nkey = b.ld(na, 8, MemHint{dnodes, -1});
        auto [phit, pmissk] = b.cmp(CmpCond::EQ, nkey, key);
        (void)pmissk;
        b.br(phit, found);
        Reg nxa = b.addi(na, 8);
        b.ldTo(cur, nxa, 8, MemHint{dnodes, -1});
        b.jump(walk);

        b.setBlock(found);
        b.ret(cur);
        b.setBlock(miss);
        b.ret(b.movi(0));
    }

    // ---- parse(pos_addr, depth): recursive descent ----
    // Reads tokens from *pos_addr, advancing it; returns subtree value.
    int posv = p.addSymbol("pa_pos", 8);
    Function *parse = b.beginFunction("parse", 1); // (depth)
    {
        Reg depth = b.param(0);
        Reg tbase = b.mova(toks);
        Reg pos_a = b.mova(posv);
        BasicBlock *loop = b.newBlock();
        BasicBlock *word = b.newBlock();
        BasicBlock *open = b.newBlock();
        BasicBlock *uni = b.newBlock();
        BasicBlock *next = b.newBlock();
        BasicBlock *out = b.newBlock();
        Reg acc = b.movi(0);
        b.fallthrough(loop);

        b.setBlock(loop);
        Reg pos = b.ld(pos_a, 8, MemHint{posv, -1});
        auto [pend, pmore] = b.cmpi(CmpCond::GE, pos, kTokens);
        (void)pmore;
        b.br(pend, out);
        Reg ta = b.add(tbase, b.shli(pos, 4));
        Reg kind = b.ld(ta, 8, MemHint{toks, -1});
        Reg val = b.ld(b.addi(ta, 8), 8, MemHint{toks, -1});
        // consume the token
        Reg pos1 = b.addi(pos, 1);
        b.st(pos_a, pos1, 8, MemHint{posv, -1});
        auto [pw, d1] = b.cmpi(CmpCond::EQ, kind, 0);
        (void)d1;
        b.br(pw, word);
        auto [po, d2] = b.cmpi(CmpCond::EQ, kind, 1);
        (void)d2;
        b.br(po, open);
        auto [pu, d3] = b.cmpi(CmpCond::EQ, kind, 3);
        (void)d3;
        b.br(pu, uni);
        // kind == 2 (close): end this level.
        b.jump(out);

        b.setBlock(word);
        Reg dv = b.call(lookup, {val});
        b.addTo(acc, acc, dv);
        b.jump(next);

        b.setBlock(open);
        // Depth guard keeps recursion bounded on any input.
        auto [pdeep, pok2] = b.cmpi(CmpCond::GE, depth, 200);
        (void)pok2;
        b.br(pdeep, next);
        Reg d1r = b.addi(depth, 1);
        Reg sub = b.call(parse, {d1r});
        b.addTo(acc, acc, sub);
        b.jump(next);

        b.setBlock(uni);
        // Union: even values are valid node pointers, odd are ints.
        Reg low = b.andi(val, 1);
        auto [pint, pptr] = b.cmpi(CmpCond::EQ, low, 1);
        b.addTo(acc, acc, val, pint);
        Reg uv = b.gr();
        b.ldTo(uv, val, 8, MemHint{-1, -1}, pptr);
        b.addTo(acc, acc, uv, pptr);
        b.fallthrough(next);

        b.setBlock(next);
        Reg mix = b.andi(acc, 0xffffffffll);
        b.movTo(acc, mix);
        b.jump(loop);

        b.setBlock(out);
        b.ret(acc);
    }

    Function *f = b.beginFunction("main", 0);
    {
        Reg zero = b.movi(0);
        Reg v = b.call(parse, {zero});
        b.ret(v);
    }
    p.entry_func = f->id;
    return pp;
}

void
writeInput(const Program &p, Memory &mem, InputKind kind)
{
    int toks = -1, buckets = -1, dnodes = -1;
    for (const DataSymbol &s : p.symbols) {
        if (s.name == "pa_tokens")
            toks = s.id;
        if (s.name == "pa_buckets")
            buckets = s.id;
        if (s.name == "pa_nodes")
            dnodes = s.id;
    }
    Rng rng(wl::seedFor(kind, 197));

    // Dictionary: nodes chained into buckets (1-based node indices).
    uint64_t nb = p.symbolAddr(dnodes);
    uint64_t bkt = p.symbolAddr(buckets);
    std::vector<uint64_t> heads(kDictBuckets, 0);
    for (int n = 0; n < kDictNodes; ++n) {
        uint64_t key = rng.nextBelow(1 << 16);
        uint64_t h = (key ^ (key >> 7)) & (kDictBuckets - 1);
        uint64_t next = heads[h];
        heads[h] = static_cast<uint64_t>(n + 1);
        uint64_t a = nb + static_cast<uint64_t>(n) * 16;
        mem.writeBytes(a, reinterpret_cast<const uint8_t *>(&key), 8);
        mem.writeBytes(a + 8, reinterpret_cast<const uint8_t *>(&next),
                       8);
    }
    for (int h = 0; h < kDictBuckets; ++h) {
        mem.writeBytes(bkt + static_cast<uint64_t>(h) * 8,
                       reinterpret_cast<const uint8_t *>(&heads[h]), 8);
    }

    // Token stream: words, balanced-ish parens, occasional unions.
    uint64_t tb = p.symbolAddr(toks);
    int depth = 0;
    for (int64_t i = 0; i < kTokens; ++i) {
        uint64_t kind_v, val;
        uint64_t roll = rng.nextBelow(100);
        if (roll < 64) {
            kind_v = 0;
            val = rng.nextBelow(1 << 16);
        } else if (roll < 81 && depth < 60) {
            kind_v = 1;
            val = 0;
            ++depth;
        } else if (roll < 97 && depth > 0) {
            kind_v = 2;
            val = 0;
            --depth;
        } else {
            kind_v = 3;
            if (rng.chance(1, 10)) {
                // odd junk integer (looks like a bad pointer)
                val = (0x540000000ull + rng.nextBelow(1 << 28) * 8) | 1;
            } else {
                // valid (even) pointer into the node pool
                val = nb + rng.nextBelow(kDictNodes) * 16;
            }
        }
        uint64_t a = tb + static_cast<uint64_t>(i) * 16;
        mem.writeBytes(a, reinterpret_cast<const uint8_t *>(&kind_v), 8);
        mem.writeBytes(a + 8, reinterpret_cast<const uint8_t *>(&val), 8);
    }
}

} // namespace

Workload
makeParser()
{
    Workload w;
    w.name = "197.parser";
    w.signature =
        "recursive descent + dict chains; recursion -> RSE; minor wild "
        "loads";
    w.ref_time = 1800;
    w.build = build;
    w.write_input = writeInput;
    return w;
}

} // namespace epic
