/**
 * @file
 * The synthetic SPECint2000 stand-in suite (DESIGN.md §5).
 *
 * Each workload builds an IR program engineered to exhibit the specific
 * behaviour the paper attributes to its SPEC counterpart (mcf's pointer
 * chasing, gcc's wild loads and code footprint, crafty's serial low-trip
 * loops, vortex's library calls, bzip2's store-to-load conflicts, ...).
 * Programs read their inputs from data symbols that are filled into the
 * memory image by writeInput() — with distinct *train* and *ref*
 * variants, so profile feedback is collected on a different input than
 * the measured run (SPEC methodology, and the §4.6 profile-variation
 * experiment).
 */
#ifndef EPIC_WORKLOADS_WORKLOAD_H
#define EPIC_WORKLOADS_WORKLOAD_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/program.h"
#include "sim/memory.h"

namespace epic {

/** Which input set to install. */
enum class InputKind { Train, Ref };

/** One synthetic benchmark. */
struct Workload
{
    std::string name;        ///< e.g. "164.gzip"
    std::string signature;   ///< one-line behavioural description

    /// SPEC reference-time stand-in used to scale ratios in Table 1
    /// (arbitrary units; larger = longer nominal reference run).
    double ref_time = 1.0;

    /// Build the (unoptimized, unprofiled) program.
    std::function<std::unique_ptr<Program>()> build;

    /// Install an input set into an initialized memory image.
    std::function<void(const Program &, Memory &, InputKind)> write_input;
};

/** The whole suite, in SPEC order. */
const std::vector<Workload> &allWorkloads();

/** Lookup by (exact) name; null when absent. */
const Workload *findWorkload(const std::string &name);

// Individual constructors (one per translation unit).
Workload makeGzip();
Workload makeVpr();
Workload makeGcc();
Workload makeMcf();
Workload makeCrafty();
Workload makeParser();
Workload makeEon();
Workload makePerlbmk();
Workload makeGap();
Workload makeVortex();
Workload makeBzip2();
Workload makeTwolf();

} // namespace epic

#endif // EPIC_WORKLOADS_WORKLOAD_H
