/**
 * @file
 * 186.crafty stand-in: chess position evaluation.
 *
 * Signature (paper §2.4, Figure 3): Evaluate() contains several
 * *sequential low-trip while loops* (bitboard scans that typically run
 * exactly once — "each side has a single queen") separated by branchy
 * feature code. Peel-and-merge is the intended transformation. The
 * benchmark also carries a large instruction footprint (eight evaluator
 * functions + inlining) so ILP code growth pressures the 16 KB L1I, and
 * one evaluator holds many simultaneously-live values (register
 * pressure -> RSE, §4.4).
 */
#include "workloads/common.h"

namespace epic {

namespace {

constexpr int64_t kPositions = 2200;
constexpr int kWordsPerPos = 8;

/**
 * Emit: while (bb != 0) { acc ^= mix(bb); bb &= bb-1 } — the classic
 * bitboard scan; with 1-2 bits set it runs 1-2 iterations.
 */
void
emitBitScan(IRBuilder &b, Reg bb, Reg acc, int salt)
{
    BasicBlock *head = b.newBlock();
    BasicBlock *exit = b.newBlock();
    auto [pnz0, pz0] = b.cmpi(CmpCond::NE, bb, 0);
    (void)pz0;
    b.br(pnz0, head);
    b.fallthrough(exit);

    b.setBlock(head);
    Reg bbm1 = b.subi(bb, 1);
    Reg low = b.xor_(bb, b.and_(bb, bbm1)); // lowest set bit
    Reg mix = b.xori(b.shri(low, salt & 7), salt * 37);
    Reg folded = b.xor_(acc, mix);
    b.movTo(acc, folded);
    b.movTo(bb, b.and_(bb, bbm1));
    auto [pnz, pz] = b.cmpi(CmpCond::NE, bb, 0);
    (void)pz;
    b.br(pnz, head);
    b.fallthrough(exit);

    b.setBlock(exit);
}

/** One evaluator: feature arithmetic + two sequential bit scans. */
Function *
emitEvaluator(IRBuilder &b, const char *name, int salt, int filler_ops,
              int live_values)
{
    Function *f = b.beginFunction(name, 2); // (white_bb, black_bb)
    Reg wq = b.mov(b.param(0));
    Reg bq = b.mov(b.param(1));
    Reg acc = b.movi(salt);

    // Feature computation with configurable register pressure: build
    // `live_values` independent temps, then reduce.
    std::vector<Reg> live;
    Reg seed = b.xor_(wq, bq);
    for (int i = 0; i < live_values; ++i) {
        Reg t = b.xori(b.shri(seed, (i % 13) + 1), (salt + i) * 11);
        live.push_back(t);
    }
    // Feature computation: independent chains (real ILP) sized by
    // filler_ops, kept live to the end of the function.
    Reg feat = wl::parallelChains(b, seed, 4, filler_ops / 4, salt);

    // The Figure 3 shape: two sequential low-trip scans.
    emitBitScan(b, wq, acc, salt + 1);
    emitBitScan(b, bq, acc, salt + 2);

    Reg sum = acc;
    for (Reg t : live)
        sum = b.add(sum, t);
    sum = b.add(sum, feat);
    b.ret(b.andi(sum, 0xffffffffll));
    return f;
}

std::unique_ptr<Program>
build()
{
    auto pp = std::make_unique<Program>();
    Program &p = *pp;
    int boards =
        p.addSymbol("cr_boards", kPositions * kWordsPerPos * 8);

    IRBuilder b(p);

    // Eight evaluators with varied size: a realistic code footprint.
    std::vector<Function *> evals;
    evals.push_back(emitEvaluator(b, "EvaluatePawns", 3, 26, 6));
    evals.push_back(emitEvaluator(b, "EvaluateKnights", 5, 22, 6));
    evals.push_back(emitEvaluator(b, "EvaluateBishops", 7, 24, 6));
    evals.push_back(emitEvaluator(b, "EvaluateRooks", 11, 20, 8));
    evals.push_back(emitEvaluator(b, "EvaluateQueens", 13, 12, 8));
    evals.push_back(emitEvaluator(b, "EvaluateKingSafety", 17, 30, 20));
    evals.push_back(emitEvaluator(b, "EvaluatePassedPawns", 19, 24, 6));
    evals.push_back(emitEvaluator(b, "EvaluateMobility", 23, 28, 14));

    Function *f = b.beginFunction("main", 0);
    BasicBlock *loop = b.newBlock();
    BasicBlock *done = b.newBlock();
    Reg i = b.gr(), acc = b.gr();
    b.moviTo(i, 0);
    b.moviTo(acc, 0);
    Reg base = b.mova(boards);
    b.fallthrough(loop);

    b.setBlock(loop);
    Reg pa = b.add(base, b.shli(i, 6)); // 8 words x 8 bytes
    std::vector<Reg> words;
    for (int k = 0; k < kWordsPerPos; ++k) {
        Reg wa = b.addi(pa, k * 8);
        words.push_back(b.ld(wa, 8, MemHint{boards, -1}));
    }
    for (size_t e = 0; e < evals.size(); ++e) {
        Reg v = b.call(evals[e], {words[e % 4], words[4 + e % 4]});
        b.addTo(acc, acc, v);
    }
    Reg mix = b.andi(acc, 0xffffffffll);
    b.movTo(acc, mix);
    b.addiTo(i, i, 1);
    auto [pl, pge] = b.cmpi(CmpCond::LT, i, kPositions);
    (void)pge;
    b.br(pl, loop);
    b.fallthrough(done);

    b.setBlock(done);
    b.ret(acc);
    p.entry_func = f->id;
    return pp;
}

void
writeInput(const Program &p, Memory &mem, InputKind kind)
{
    int boards = -1;
    for (const DataSymbol &s : p.symbols)
        if (s.name == "cr_boards")
            boards = s.id;
    // Bitboards with 1-2 bits set (the "single queen" pattern), with a
    // slightly different sparsity for train vs ref (inlining/region
    // decisions become profile-sensitive -> §4.6's crafty +5%).
    bool train = kind == InputKind::Train;
    wl::fillSym64(p, mem, boards, kPositions * kWordsPerPos,
                  wl::seedFor(kind, 186),
                  [train](uint64_t, Rng &rng) -> uint64_t {
                      uint64_t v = 1ull << rng.nextBelow(64);
                      unsigned extra_num = train ? 1 : 2;
                      if (rng.chance(extra_num, 8))
                          v |= 1ull << rng.nextBelow(64);
                      if (rng.chance(1, 16))
                          v = 0; // empty board: loop runs zero times
                      return v;
                  });
}

} // namespace

Workload
makeCrafty()
{
    Workload w;
    w.name = "186.crafty";
    w.signature =
        "serial low-trip bitboard loops (Fig.3), big I-footprint, "
        "register pressure";
    w.ref_time = 1000;
    w.build = build;
    w.write_input = writeInput;
    return w;
}

} // namespace epic
