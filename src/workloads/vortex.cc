/**
 * @file
 * 255.vortex stand-in: object-oriented database transactions.
 *
 * Signature (paper Figure 10): the biggest structural-ILP winner — its
 * field pack/unpack and validation code is branch-poor and wide — but a
 * fixed slice of its time sits in gcc-compiled *library* functions
 * (chunk_alloc, chunk_free, memcpy) that no configuration improves.
 * Those are kFuncLibrary here: always compiled classically with
 * one-bundle groups, reproducing the flat bars of Figure 10.
 */
#include "workloads/common.h"

namespace epic {

namespace {

constexpr int64_t kOps = 7000;
constexpr int kRecWords = 8;
constexpr int kHeapRecs = 2048;
constexpr int kHashBuckets = 512;
constexpr int64_t kInputRecs = 1024; ///< 64 KB payload window

std::unique_ptr<Program>
build()
{
    auto pp = std::make_unique<Program>();
    Program &p = *pp;
    int heap = p.addSymbol("vx_heap", kHeapRecs * kRecWords * 8);
    int freelist = p.addSymbol("vx_free", 8); // bump index
    int hash = p.addSymbol("vx_hash", kHashBuckets * 8);
    // Transactions cycle over a cache-friendly window of payloads.
    int input = p.addSymbol("vx_input", kInputRecs * kRecWords * 8);

    IRBuilder b(p);

    // ---- library: chunk_alloc() -> record index (bump + wrap) ----
    Function *chunk_alloc =
        b.beginFunction("chunk_alloc", 0, kFuncLibrary);
    {
        Reg fa = b.mova(freelist);
        Reg idx = b.ld(fa, 8);
        Reg nxt = b.addi(idx, 1);
        Reg wrapped = b.andi(nxt, kHeapRecs - 1);
        b.st(fa, wrapped, 8);
        // Touch the allocator metadata (free-list maintenance flavour).
        Reg scan = b.mov(idx);
        for (int i = 0; i < 6; ++i)
            scan = b.xori(b.shri(scan, 1), i * 3);
        b.ret(b.add(idx, b.andi(scan, 0)));
    }

    // ---- library: chunk_free(idx) ----
    Function *chunk_free = b.beginFunction("chunk_free", 1, kFuncLibrary);
    {
        Reg idx = b.param(0);
        Reg scan = b.mov(idx);
        for (int i = 0; i < 5; ++i)
            scan = b.addi(b.shri(scan, 1), i);
        b.ret(scan);
    }

    // ---- library: memcpyish(dst_rec, src_addr): copy 8 words ----
    Function *memcpyish = b.beginFunction("memcpyish", 2, kFuncLibrary);
    {
        BasicBlock *loop = b.newBlock();
        BasicBlock *done = b.newBlock();
        Reg k = b.gr();
        b.moviTo(k, 0);
        b.fallthrough(loop);
        b.setBlock(loop);
        // Hand-unrolled two words per iteration, like real memcpy.
        Reg off = b.shli(k, 3);
        Reg sa = b.add(b.param(1), off);
        Reg da = b.add(b.param(0), off);
        Reg v = b.ld(sa, 8);
        b.st(da, v, 8);
        Reg sa2 = b.addi(sa, 8);
        Reg da2 = b.addi(da, 8);
        Reg v2 = b.ld(sa2, 8);
        b.st(da2, v2, 8);
        b.addiTo(k, k, 2);
        auto [pl, pge] = b.cmpi(CmpCond::LT, k, kRecWords);
        (void)pge;
        b.br(pl, loop);
        b.fallthrough(done);
        b.setBlock(done);
        b.ret(k);
    }

    // ---- Mem_GetWord-style small helpers (inlining fodder) ----
    Function *get_field = b.beginFunction("Mem_GetField", 2);
    {
        // (word, field): extract a 16-bit field.
        Reg sh = b.shli(b.andi(b.param(1), 3), 4);
        Reg v = b.shr(b.param(0), sh);
        b.ret(b.andi(v, 0xffff));
    }
    Function *put_field = b.beginFunction("Mem_PutField", 3);
    {
        // (word, field, val) -> new word
        Reg sh = b.shli(b.andi(b.param(1), 3), 4);
        Reg mask = b.shl(b.movi(0xffff), sh);
        Reg cleared = b.and_(b.param(0), b.xori(mask, -1));
        Reg nv = b.shl(b.andi(b.param(2), 0xffff), sh);
        b.ret(b.or_(cleared, nv));
    }

    // ---- Validate: wide, branch-poor field checks (the ILP winner) ----
    Function *validate = b.beginFunction("BMT_Validate", 1); // rec addr
    {
        Reg ra = b.param(0);
        std::vector<Reg> words;
        for (int k = 0; k < kRecWords; ++k)
            words.push_back(
                b.ld(b.addi(ra, k * 8), 8, MemHint{-1, 3}));
        // Independent field extractions: lots of parallel work.
        Reg sum = b.movi(0);
        for (int k = 0; k < kRecWords; ++k) {
            Reg f0 = b.andi(words[k], 0xffff);
            Reg f1 = b.andi(b.shri(words[k], 16), 0xffff);
            Reg f2 = b.andi(b.shri(words[k], 32), 0xffff);
            Reg f3 = b.andi(b.shri(words[k], 48), 0xffff);
            Reg s1 = b.add(f0, f2);
            Reg s2 = b.add(f1, f3);
            Reg s3 = b.xor_(s1, b.shli(s2, 1));
            sum = b.add(sum, s3);
        }
        b.ret(b.andi(sum, 0xffffffffll));
    }

    // ---- main transaction loop ----
    Function *f = b.beginFunction("main", 0);
    BasicBlock *loop = b.newBlock();
    BasicBlock *del = b.newBlock();
    BasicBlock *cont = b.newBlock();
    BasicBlock *done = b.newBlock();
    Reg i = b.gr(), acc = b.gr();
    b.moviTo(i, 0);
    b.moviTo(acc, 0);
    Reg hbase = b.mova(heap);
    Reg ibase = b.mova(input);
    Reg hashb = b.mova(hash);
    b.fallthrough(loop);

    b.setBlock(loop);
    // Allocate a record, copy the payload in, validate, index it.
    Reg rec = b.call(chunk_alloc, {});
    Reg ra = b.add(hbase, b.shli(rec, 6));
    Reg sa = b.add(ibase, b.shli(b.andi(i, kInputRecs - 1), 6));
    b.callv(memcpyish, {ra, sa});
    Reg chk = b.call(validate, {ra});
    b.addTo(acc, acc, chk);
    // Pack a header field and hash-index the record.
    Reg w0 = b.ld(ra, 8, MemHint{heap, -1});
    Reg fld = b.call(get_field, {w0, b.movi(1)});
    Reg w0b = b.call(put_field, {w0, b.movi(2), fld});
    b.st(ra, w0b, 8, MemHint{heap, -1});
    Reg hh = b.andi(b.xor_(chk, b.shri(chk, 5)), kHashBuckets - 1);
    Reg ha = wl::indexAddr(b, hashb, hh, 3);
    Reg old = b.ld(ha, 8, MemHint{hash, -1});
    b.st(ha, b.add(old, rec), 8, MemHint{hash, -1});
    // Occasionally delete (frees go through the library).
    Reg lowbits = b.andi(chk, 7);
    auto [pdel, pkeep] = b.cmpi(CmpCond::EQ, lowbits, 3);
    (void)pkeep;
    b.br(pdel, del);
    b.fallthrough(cont);

    b.setBlock(del);
    Reg fr = b.call(chunk_free, {rec});
    b.addTo(acc, acc, fr);
    b.fallthrough(cont);

    b.setBlock(cont);
    Reg mix = b.andi(b.add(acc, old), 0xffffffffll);
    b.movTo(acc, mix);
    b.addiTo(i, i, 1);
    auto [pl, pge] = b.cmpi(CmpCond::LT, i, kOps);
    (void)pge;
    b.br(pl, loop);
    b.fallthrough(done);

    b.setBlock(done);
    b.ret(acc);
    p.entry_func = f->id;
    return pp;
}

void
writeInput(const Program &p, Memory &mem, InputKind kind)
{
    int input = -1;
    for (const DataSymbol &s : p.symbols)
        if (s.name == "vx_input")
            input = s.id;
    wl::fillSym64(p, mem, input, kInputRecs * kRecWords,
                  wl::seedFor(kind, 255),
                  [](uint64_t, Rng &r) { return r.next() >> 8; });
}

} // namespace

Workload
makeVortex()
{
    Workload w;
    w.name = "255.vortex";
    w.signature =
        "OO-db transactions: widest ILP winner + flat gcc-compiled "
        "library slice (Fig.10)";
    w.ref_time = 2500;
    w.build = build;
    w.write_input = writeInput;
    return w;
}

} // namespace epic
