/**
 * @file
 * Shared helpers for the workload generators: deterministic input
 * filling and small IR idioms used across benchmarks.
 */
#ifndef EPIC_WORKLOADS_COMMON_H
#define EPIC_WORKLOADS_COMMON_H

#include <cstdint>
#include <vector>

#include "ir/builder.h"
#include "sim/memory.h"
#include "support/rng.h"
#include "workloads/workload.h"

namespace epic {
namespace wl {

/** Seeds per input kind (ref differs from train). */
inline uint64_t
seedFor(InputKind kind, uint64_t salt)
{
    return (kind == InputKind::Train ? 0x7261696eull : 0x52454621ull) ^
           (salt * 0x9e3779b97f4a7c15ull);
}

/** Fill a symbol with 64-bit values produced by `gen(i, rng)`. */
template <typename Gen>
void
fillSym64(const Program &p, Memory &mem, int sym, uint64_t count,
          uint64_t seed, Gen gen)
{
    Rng rng(seed);
    uint64_t addr = p.symbolAddr(sym);
    for (uint64_t i = 0; i < count; ++i) {
        uint64_t v = gen(i, rng);
        mem.writeBytes(addr + i * 8,
                       reinterpret_cast<const uint8_t *>(&v), 8);
    }
}

/** Fill a symbol with bytes from `gen(i, rng)`. */
template <typename Gen>
void
fillSym8(const Program &p, Memory &mem, int sym, uint64_t count,
         uint64_t seed, Gen gen)
{
    Rng rng(seed);
    uint64_t addr = p.symbolAddr(sym);
    for (uint64_t i = 0; i < count; ++i) {
        uint8_t v = gen(i, rng);
        mem.writeBytes(addr + i, &v, 1);
    }
}

/** Emit `addr = base + (idx << shift)`. */
inline Reg
indexAddr(IRBuilder &b, Reg base, Reg idx, int shift)
{
    return shift ? b.add(base, b.shli(idx, shift)) : b.add(base, idx);
}

/**
 * Emit `chains` independent serial dependence chains (2 ops per step,
 * `len` steps each) seeded from `seed`, reduced to one value. This is
 * the suite's standard "feature computation" idiom: it carries real
 * instruction-level parallelism (up to `chains`-wide) that a good
 * scheduler can exploit and a narrow one cannot.
 */
inline Reg
parallelChains(IRBuilder &b, Reg seed, int chains, int len, int salt)
{
    std::vector<Reg> c;
    for (int k = 0; k < chains; ++k)
        c.push_back(b.xori(b.shri(seed, k + 1), salt * 17 + k));
    for (int step = 0; step < len; ++step) {
        for (int k = 0; k < chains; ++k) {
            Reg t = b.shri(c[k], (step + k) % 7 + 1);
            c[k] = b.xor_(b.addi(c[k], salt + step), t);
        }
    }
    Reg sum = c[0];
    for (int k = 1; k < chains; ++k)
        sum = b.add(sum, c[k]);
    return sum;
}

/**
 * Emit a standard counted-loop skeleton:
 *   for (i = 0; i < limit; ++i) body(i)
 * The caller provides the body via callback; `i` is pre-created.
 * Returns the loop and exit blocks for further wiring.
 */
struct CountedLoop
{
    BasicBlock *head = nullptr;
    BasicBlock *exit = nullptr;
    Reg i;
};

template <typename Body>
CountedLoop
countedLoop(IRBuilder &b, int64_t limit, Body body)
{
    CountedLoop cl;
    cl.i = b.gr();
    cl.head = b.newBlock();
    cl.exit = b.newBlock();
    b.moviTo(cl.i, 0);
    b.fallthrough(cl.head);
    b.setBlock(cl.head);
    body(cl.i);
    b.addiTo(cl.i, cl.i, 1);
    auto [plt, pge] = b.cmpi(CmpCond::LT, cl.i, limit);
    (void)pge;
    b.br(plt, cl.head);
    b.fallthrough(cl.exit);
    b.setBlock(cl.exit);
    return cl;
}

} // namespace wl
} // namespace epic

#endif // EPIC_WORKLOADS_COMMON_H
