/**
 * @file
 * 300.twolf stand-in: standard-cell placement cost evaluation.
 *
 * Signature (paper §4.1): a *lukewarm* low-trip inner loop (net-span
 * walk) inside each of six rotating move-evaluation routines whose
 * combined hot footprint sits near the 16 KB L1I capacity. Peeling
 * splits the inner loop into a peel copy plus a specialized remainder
 * that is itself lukewarm — two warm copies where there was one — and
 * ILP code growth pushes the loop footprint past L1I: I-cache stalls
 * *increase* ~35 % even though the benchmark still speeds up (1.38).
 */
#include "workloads/common.h"

namespace epic {

namespace {

constexpr int64_t kMoves = 5000;
constexpr int kEvals = 8;
constexpr int64_t kCells = 4096;

Function *
emitEval(IRBuilder &b, int idx, int cells_sym)
{
    std::string name = "eval_move_" + std::to_string(idx);
    Function *f = b.beginFunction(name, 2); // (cell, temperature)
    Reg cell = b.param(0);
    Reg temp = b.param(1);
    Reg cbase = b.mova(cells_sym);

    // Wide feature preamble (hot straight-line footprint).
    Reg ca = b.add(cbase, b.shli(b.andi(cell, kCells - 1), 3));
    Reg w = b.ld(ca, 8, MemHint{cells_sym, -1});
    Reg cost = b.movi(idx * 7);
    {
        Reg feat = wl::parallelChains(b, w, 4, 10 + idx * 2, idx * 29);
        cost = b.add(cost, b.andi(feat, 0xffff));
    }

    // The lukewarm low-trip loop: span walk, trip in {1, 2, 3}.
    BasicBlock *span = b.newBlock();
    BasicBlock *after = b.newBlock();
    Reg trips = b.addi(b.andi(w, 3), 1); // 1..4, skewed small
    Reg k = b.gr();
    b.moviTo(k, 0);
    b.fallthrough(span);

    b.setBlock(span);
    Reg sa = b.add(cbase, b.shli(b.andi(b.add(cell, k), kCells - 1), 3));
    Reg sv = b.ld(sa, 8, MemHint{cells_sym, -1});
    Reg c2 = b.add(cost, b.andi(sv, 0xffff));
    b.movTo(cost, c2);
    b.addiTo(k, k, 1);
    auto [pmore, pdone] = b.cmp(CmpCond::LT, k, trips);
    (void)pdone;
    b.br(pmore, span);
    b.fallthrough(after);

    // Accept/reject tail with temperature bias: a joinable diamond
    // (if-conversion fodder).
    b.setBlock(after);
    BasicBlock *acc_bb = b.newBlock();
    BasicBlock *rej = b.newBlock();
    BasicBlock *join = b.newBlock();
    Reg result = b.gr();
    Reg thresh = b.add(temp, b.movi(900 + idx * 40));
    auto [pacc2, prej2] = b.cmp(CmpCond::LT, b.andi(cost, 0x7ff),
                                thresh);
    (void)pacc2;
    b.br(prej2, rej);
    b.fallthrough(acc_bb);

    b.setBlock(acc_bb);
    b.movTo(result, b.xori(cost, 0x2a));
    b.jump(join);

    b.setBlock(rej);
    b.movTo(result, b.shri(cost, 1));
    b.fallthrough(join);

    b.setBlock(join);
    b.ret(b.andi(result, 0xffffffll));
    return f;
}

std::unique_ptr<Program>
build()
{
    auto pp = std::make_unique<Program>();
    Program &p = *pp;
    int cells = p.addSymbol("tw_cells", kCells * 8);
    int moves = p.addSymbol("tw_moves", kMoves * 8);

    IRBuilder b(p);
    std::vector<Function *> evals;
    for (int i = 0; i < kEvals; ++i)
        evals.push_back(emitEval(b, i, cells));

    Function *f = b.beginFunction("main", 0);
    BasicBlock *loop = b.newBlock();
    BasicBlock *done = b.newBlock();
    Reg i = b.gr(), acc = b.gr();
    b.moviTo(i, 0);
    b.moviTo(acc, 0);
    Reg mbase = b.mova(moves);
    b.fallthrough(loop);

    b.setBlock(loop);
    Reg ma = wl::indexAddr(b, mbase, i, 3);
    Reg mv = b.ld(ma, 8, MemHint{moves, -1});
    Reg cell = b.andi(mv, 0xffff);
    Reg temp = b.andi(b.shri(mv, 16), 0x3ff);
    // Rotate across the eight evaluators (keeps the whole eval
    // footprint warm). Dispatch through a branch tree with unguarded
    // calls, so the inliner can absorb the hot evaluators — growing the
    // loop footprint, as real twolf's move loop does.
    Reg sel = b.andi(i, kEvals - 1);
    Reg v = b.gr();
    BasicBlock *cont_bb = b.newBlock();
    std::vector<BasicBlock *> disp;
    for (int e = 0; e < kEvals; ++e)
        disp.push_back(b.newBlock());
    for (int e = 0; e + 1 < kEvals; ++e) {
        auto [pe, pne] = b.cmpi(CmpCond::EQ, sel, e);
        (void)pne;
        b.br(pe, disp[e]);
    }
    b.fallthrough(disp[kEvals - 1]);
    for (int e = 0; e < kEvals; ++e) {
        b.setBlock(disp[e]);
        Reg r = b.call(evals[e], {cell, temp});
        b.movTo(v, r);
        if (e + 1 < kEvals) {
            Instruction jmp;
            jmp.op = Opcode::BR;
            jmp.target = cont_bb->id;
            b.emit(jmp);
        } else {
            b.fallthrough(cont_bb);
        }
    }
    b.setBlock(cont_bb);
    b.addTo(acc, acc, v);
    Reg mix = b.andi(acc, 0xffffffffll);
    b.movTo(acc, mix);
    b.addiTo(i, i, 1);
    auto [pl, pge] = b.cmpi(CmpCond::LT, i, kMoves);
    (void)pge;
    b.br(pl, loop);
    b.fallthrough(done);

    b.setBlock(done);
    b.ret(acc);
    p.entry_func = f->id;
    return pp;
}

void
writeInput(const Program &p, Memory &mem, InputKind kind)
{
    int cells = -1, moves = -1;
    for (const DataSymbol &s : p.symbols) {
        if (s.name == "tw_cells")
            cells = s.id;
        if (s.name == "tw_moves")
            moves = s.id;
    }
    wl::fillSym64(p, mem, cells, kCells, wl::seedFor(kind, 300),
                  [](uint64_t, Rng &r) -> uint64_t {
                      uint64_t v = r.next() >> 16;
                      // Skew the span-walk trip count toward 1.
                      if (r.chance(5, 8))
                          v &= ~3ull; // trips = 1
                      else if (r.chance(2, 3))
                          v = (v & ~3ull) | 1; // trips = 2
                      return v;
                  });
    wl::fillSym64(p, mem, moves, kMoves, wl::seedFor(kind, 3000),
                  [](uint64_t, Rng &r) { return r.next() >> 8; });
}

} // namespace

Workload
makeTwolf()
{
    Workload w;
    w.name = "300.twolf";
    w.signature =
        "rotating move evals near L1I capacity; peeled lukewarm loop "
        "thrashes I-cache";
    w.ref_time = 1900;
    w.build = build;
    w.write_input = writeInput;
    return w;
}

} // namespace epic
