/**
 * @file
 * 175.vpr stand-in: placement cost evaluation.
 *
 * Signature: per-net bounding-box computation — min/max reductions over
 * four pins implemented with compare + guarded moves (classic
 * if-conversion fodder), a moderately large working set, and an
 * accept/reject branch of middling bias.
 */
#include "workloads/common.h"

namespace epic {

namespace {

constexpr int64_t kNets = 4 * 1024;
constexpr int64_t kPins = 4;
constexpr int64_t kMoves = 72 * 1024;

std::unique_ptr<Program>
build()
{
    auto pp = std::make_unique<Program>();
    Program &p = *pp;
    // Pin coordinates, one 8-byte (x<<16|y) word per pin.
    int pins = p.addSymbol("vpr_pins", kNets * kPins * 8);
    int order = p.addSymbol("vpr_order", kMoves * 8);

    IRBuilder b(p);
    Function *f = b.beginFunction("main", 0);
    BasicBlock *loop = b.newBlock();
    BasicBlock *accept = b.newBlock();
    BasicBlock *cont = b.newBlock();
    BasicBlock *done = b.newBlock();

    Reg m = b.gr(), cost = b.gr();
    b.moviTo(m, 0);
    b.moviTo(cost, 0);
    Reg pbase = b.mova(pins);
    Reg obase = b.mova(order);
    b.fallthrough(loop);

    b.setBlock(loop);
    Reg oa = wl::indexAddr(b, obase, m, 3);
    Reg net = b.ld(oa, 8, MemHint{order, -1});
    Reg na = b.add(pbase, b.shli(net, 5)); // net * 4 pins * 8 bytes

    // Bounding box over the 4 pins: min/max via guarded moves.
    Reg xmin = b.gr(), xmax = b.gr(), ymin = b.gr(), ymax = b.gr();
    b.moviTo(xmin, 1 << 20);
    b.moviTo(xmax, 0);
    b.moviTo(ymin, 1 << 20);
    b.moviTo(ymax, 0);
    for (int k = 0; k < kPins; ++k) {
        Reg pa = b.addi(na, k * 8);
        Reg xy = b.ld(pa, 8, MemHint{pins, -1});
        Reg x = b.shri(xy, 16);
        Reg y = b.andi(xy, 0xffff);
        auto [pxl, d1] = b.cmp(CmpCond::LT, x, xmin);
        (void)d1;
        b.movTo(xmin, x, pxl);
        auto [pxg, d2] = b.cmp(CmpCond::GT, x, xmax);
        (void)d2;
        b.movTo(xmax, x, pxg);
        auto [pyl, d3] = b.cmp(CmpCond::LT, y, ymin);
        (void)d3;
        b.movTo(ymin, y, pyl);
        auto [pyg, d4] = b.cmp(CmpCond::GT, y, ymax);
        (void)d4;
        b.movTo(ymax, y, pyg);
    }
    Reg dx = b.sub(xmax, xmin);
    Reg dy = b.sub(ymax, ymin);
    Reg bbox = b.add(dx, dy);

    // Accept the move if the box is tight (input-dependent bias ~60%).
    auto [pacc, prej] = b.cmpi(CmpCond::LT, bbox, 9000);
    (void)prej;
    b.br(pacc, accept);
    b.fallthrough(cont);

    b.setBlock(accept);
    b.addTo(cost, cost, bbox);
    b.fallthrough(cont);

    b.setBlock(cont);
    Reg mix = b.xor_(cost, b.shri(bbox, 1));
    b.movTo(cost, b.andi(mix, 0xffffffffll));
    b.addiTo(m, m, 1);
    auto [pl, pge] = b.cmpi(CmpCond::LT, m, kMoves);
    (void)pge;
    b.br(pl, loop);
    b.fallthrough(done);

    b.setBlock(done);
    b.ret(cost);
    p.entry_func = f->id;
    return pp;
}

void
writeInput(const Program &p, Memory &mem, InputKind kind)
{
    int pins = -1, order = -1;
    for (const DataSymbol &s : p.symbols) {
        if (s.name == "vpr_pins")
            pins = s.id;
        if (s.name == "vpr_order")
            order = s.id;
    }
    wl::fillSym64(p, mem, pins, kNets * kPins, wl::seedFor(kind, 175),
                  [](uint64_t, Rng &rng) {
                      uint64_t x = rng.nextBelow(8192);
                      uint64_t y = rng.nextBelow(8192);
                      return (x << 16) | y;
                  });
    wl::fillSym64(p, mem, order, kMoves, wl::seedFor(kind, 1750),
                  [](uint64_t, Rng &rng) {
                      return rng.nextBelow(kNets);
                  });
}

} // namespace

Workload
makeVpr()
{
    Workload w;
    w.name = "175.vpr";
    w.signature = "bounding-box min/max: if-conversion fodder";
    w.ref_time = 1400;
    w.build = build;
    w.write_input = writeInput;
    return w;
}

} // namespace epic
