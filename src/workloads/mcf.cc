/**
 * @file
 * 181.mcf stand-in: network-simplex pointer chasing.
 *
 * Signature (paper): working set far beyond the 3 MB L3, serial
 * dependent loads; data-cache stall dominates and ILP transformation is
 * essentially neutral (Table 1: 332 -> 330 -> 341). The traversal is a
 * random-permutation cycle so hardware locality cannot help.
 */
#include "workloads/common.h"

namespace epic {

namespace {

// 512K nodes x 16 bytes = 8 MB: comfortably past the 3 MB L3.
constexpr int64_t kNodes = 512 * 1024;
constexpr int64_t kVisits = 220 * 1024;

std::unique_ptr<Program>
build()
{
    auto pp = std::make_unique<Program>();
    Program &p = *pp;
    // node[i] = { next_byte_offset: u64, cost: u64 }
    int nodes = p.addSymbol("mcf_nodes", kNodes * 16);

    IRBuilder b(p);
    Function *f = b.beginFunction("main", 0);
    BasicBlock *loop = b.newBlock();
    BasicBlock *neg = b.newBlock();
    BasicBlock *cont = b.newBlock();
    BasicBlock *done = b.newBlock();

    Reg i = b.gr(), acc = b.gr(), cur = b.gr();
    b.moviTo(i, 0);
    b.moviTo(acc, 0);
    b.moviTo(cur, 0);
    Reg base = b.mova(nodes);
    b.fallthrough(loop);

    b.setBlock(loop);
    Reg na = b.add(base, cur);
    Reg next = b.ld(na, 8, MemHint{nodes, -1});
    Reg ca = b.addi(na, 8);
    Reg cost = b.ld(ca, 8, MemHint{nodes, -1});
    // Reduced-cost style update with a (mildly biased) branch.
    auto [pneg, ppos] = b.cmpi(CmpCond::LT, cost, 12);
    (void)ppos;
    b.br(pneg, neg);
    b.fallthrough(cont);

    b.setBlock(neg);
    b.addTo(acc, acc, cost);
    b.fallthrough(cont);

    b.setBlock(cont);
    Reg mixed = b.xor_(acc, b.shri(cost, 2));
    b.movTo(acc, b.andi(mixed, 0xffffffffll));
    b.movTo(cur, next); // the serial dependence: cannot be hidden
    b.addiTo(i, i, 1);
    auto [pl, pge] = b.cmpi(CmpCond::LT, i, kVisits);
    (void)pge;
    b.br(pl, loop);
    b.fallthrough(done);

    b.setBlock(done);
    b.ret(acc);
    p.entry_func = f->id;
    return pp;
}

void
writeInput(const Program &p, Memory &mem, InputKind kind)
{
    int nodes = -1;
    for (const DataSymbol &s : p.symbols)
        if (s.name == "mcf_nodes")
            nodes = s.id;

    // A single random cycle over all nodes (Sattolo's algorithm), plus
    // per-node costs. Written as {next_offset, cost} pairs.
    Rng rng(wl::seedFor(kind, 181));
    std::vector<uint32_t> perm(kNodes);
    for (int64_t i = 0; i < kNodes; ++i)
        perm[i] = static_cast<uint32_t>(i);
    for (int64_t i = kNodes - 1; i > 0; --i) {
        int64_t j = static_cast<int64_t>(rng.nextBelow(
            static_cast<uint64_t>(i))); // Sattolo: j < i
        std::swap(perm[i], perm[j]);
    }
    uint64_t addr = p.symbolAddr(nodes);
    for (int64_t i = 0; i < kNodes; ++i) {
        uint64_t next_off = static_cast<uint64_t>(perm[i]) * 16;
        uint64_t cost = rng.nextBelow(24);
        mem.writeBytes(addr + static_cast<uint64_t>(i) * 16,
                       reinterpret_cast<const uint8_t *>(&next_off), 8);
        mem.writeBytes(addr + static_cast<uint64_t>(i) * 16 + 8,
                       reinterpret_cast<const uint8_t *>(&cost), 8);
    }
}

} // namespace

Workload
makeMcf()
{
    Workload w;
    w.name = "181.mcf";
    w.signature = "8 MB pointer chase: data-cache bound, ILP-neutral";
    w.ref_time = 1800;
    w.build = build;
    w.write_input = writeInput;
    return w;
}

} // namespace epic
