/**
 * @file
 * Opcode set and static opcode metadata for the EPIC IR.
 *
 * The opcode set is a distilled IA-64: three-operand integer ALU ops,
 * sized loads/stores with an optional control-speculative form, parallel
 * compares writing predicate pairs, fully-predicated branches, a
 * speculation check (chk.s), and a register-stack alloc. Functional-unit
 * classes and latencies follow the Itanium 2 dispersal and bypass model
 * (notably: integer multiply executes on the FP unit, as xma does).
 */
#ifndef EPIC_IR_OPCODE_H
#define EPIC_IR_OPCODE_H

#include <cstdint>

namespace epic {

/** Operation codes. */
enum class Opcode : uint8_t {
    // Data movement
    MOV,    ///< gr = gr
    MOVI,   ///< gr = imm
    MOVA,   ///< gr = address of data symbol (+offset)
    MOVFN,  ///< gr = function token (for indirect calls)
    MOVP,   ///< pr = imm (predicate set/clear)
    // Integer ALU (A-type: any M or I slot)
    ADD, SUB, AND, OR, XOR, ADDI, SUBI, ANDI, ORI, XORI,
    CMP,    ///< pr1, pr2 = cond(gr, gr); ctype selects unc/and/or behavior
    CMPI,   ///< pr1, pr2 = cond(gr, imm)
    // Integer shifts and extensions (I-unit only, like Itanium 2)
    SHL, SHR, SAR, SHLI, SHRI, SARI,
    SXT,    ///< sign-extend low 1/2/4 bytes (size field)
    ZXT,    ///< zero-extend low 1/2/4 bytes (size field)
    // Multiply/divide (executed on the FP unit, like IA-64 xma/frcpa)
    MUL, DIV, REM,
    // Memory (M-unit); access size in Instruction::size
    LD,     ///< gr = [gr]; speculative form when Instruction::spec
    ST,     ///< [gr] = gr
    LDF,    ///< fr = [gr] (8 bytes)
    STF,    ///< [gr] = fr
    // Floating point (F-unit)
    FADD, FSUB, FMUL, FDIV, FMA, FNEG,
    FCMP,   ///< pr1, pr2 = cond(fr, fr)
    CVTFI,  ///< gr = (int64)fr
    CVTIF,  ///< fr = (double)gr
    // Control (B-unit); all fully predicated by the guard
    BR,      ///< branch to label when guard true
    BR_CALL, ///< direct call; srcs = args, dest0 = return value (optional)
    BR_ICALL,///< indirect call through gr holding a function token
    BR_RET,  ///< return; src0 = return value (optional)
    CHK_S,   ///< if src gr holds NaT, branch to recovery label
    // Misc
    ALLOC,   ///< declare register-stack frame of 'imm' stacked registers
    NOP,     ///< explicit no-op (slot filler; unit class in 'size' field)

    NumOpcodes,
};

/** Comparison conditions for CMP/CMPI/FCMP. */
enum class CmpCond : uint8_t { EQ, NE, LT, LE, GT, GE, LTU, GEU };

/**
 * Parallel-compare types (IA-64): how the two predicate destinations are
 * written. Norm writes (cond, !cond); Unc additionally clears both when
 * the guard is false; And clears both dests when cond is false (guard
 * true); Or sets both dests when cond is true.
 */
enum class CmpType : uint8_t { Norm, Unc, And, Or };

/** Functional-unit classes (dispersal targets). */
enum class FuClass : uint8_t {
    A, ///< either an M or an I slot
    I, ///< integer unit only
    M, ///< memory unit only
    F, ///< floating-point unit only
    B, ///< branch unit only
};

/** Static metadata for one opcode. */
struct OpcodeInfo
{
    const char *name;
    FuClass fu;
    int latency;     ///< result latency in cycles (loads: L1-hit latency)
    bool is_load;
    bool is_store;
    bool is_branch;  ///< any control transfer (br/call/ret/chk)
    bool is_call;
    bool is_ret;
    bool has_side_effect; ///< must not be speculated or dead-code removed
};

/** Lookup static metadata. */
const OpcodeInfo &opcodeInfo(Opcode op);

/** Condition mnemonic ("eq", "ne", ...). */
const char *cmpCondName(CmpCond c);
/** Compare-type mnemonic ("", "unc", "and", "or"). */
const char *cmpTypeName(CmpType t);

} // namespace epic

#endif // EPIC_IR_OPCODE_H
