/**
 * @file
 * Opcode set and static opcode metadata for the EPIC IR.
 *
 * The opcode set is a distilled IA-64: three-operand integer ALU ops,
 * sized loads/stores with an optional control-speculative form, parallel
 * compares writing predicate pairs, fully-predicated branches, a
 * speculation check (chk.s), and a register-stack alloc. Functional-unit
 * classes and latencies follow the Itanium 2 dispersal and bypass model
 * (notably: integer multiply executes on the FP unit, as xma does).
 */
#ifndef EPIC_IR_OPCODE_H
#define EPIC_IR_OPCODE_H

#include <cstddef>
#include <cstdint>

namespace epic {

/** Operation codes. */
enum class Opcode : uint8_t {
    // Data movement
    MOV,    ///< gr = gr
    MOVI,   ///< gr = imm
    MOVA,   ///< gr = address of data symbol (+offset)
    MOVFN,  ///< gr = function token (for indirect calls)
    MOVP,   ///< pr = imm (predicate set/clear)
    // Integer ALU (A-type: any M or I slot)
    ADD, SUB, AND, OR, XOR, ADDI, SUBI, ANDI, ORI, XORI,
    CMP,    ///< pr1, pr2 = cond(gr, gr); ctype selects unc/and/or behavior
    CMPI,   ///< pr1, pr2 = cond(gr, imm)
    // Integer shifts and extensions (I-unit only, like Itanium 2)
    SHL, SHR, SAR, SHLI, SHRI, SARI,
    SXT,    ///< sign-extend low 1/2/4 bytes (size field)
    ZXT,    ///< zero-extend low 1/2/4 bytes (size field)
    // Multiply/divide (executed on the FP unit, like IA-64 xma/frcpa)
    MUL, DIV, REM,
    // Memory (M-unit); access size in Instruction::size
    LD,     ///< gr = [gr]; speculative form when Instruction::spec
    ST,     ///< [gr] = gr
    LDF,    ///< fr = [gr] (8 bytes)
    STF,    ///< [gr] = fr
    // Floating point (F-unit)
    FADD, FSUB, FMUL, FDIV, FMA, FNEG,
    FCMP,   ///< pr1, pr2 = cond(fr, fr)
    CVTFI,  ///< gr = (int64)fr
    CVTIF,  ///< fr = (double)gr
    // Control (B-unit); all fully predicated by the guard
    BR,      ///< branch to label when guard true
    BR_CALL, ///< direct call; srcs = args, dest0 = return value (optional)
    BR_ICALL,///< indirect call through gr holding a function token
    BR_RET,  ///< return; src0 = return value (optional)
    CHK_S,   ///< if src gr holds NaT, branch to recovery label
    // Misc
    ALLOC,   ///< declare register-stack frame of 'imm' stacked registers
    NOP,     ///< explicit no-op (slot filler; unit class in 'size' field)
    // Data speculation (appended so existing positional tables persist)
    LD_A,    ///< advanced load: gr = [gr], allocates an ALAT entry
    CHK_A,   ///< advanced-load check: reload [gr] into the same dest;
             ///< an ALAT hit makes the reload free in the timing model

    NumOpcodes,
};

/** Comparison conditions for CMP/CMPI/FCMP. */
enum class CmpCond : uint8_t { EQ, NE, LT, LE, GT, GE, LTU, GEU };

/**
 * Parallel-compare types (IA-64): how the two predicate destinations are
 * written. Norm writes (cond, !cond); Unc additionally clears both when
 * the guard is false; And clears both dests when cond is false (guard
 * true); Or sets both dests when cond is true.
 */
enum class CmpType : uint8_t { Norm, Unc, And, Or };

/** Functional-unit classes (dispersal targets). */
enum class FuClass : uint8_t {
    A, ///< either an M or an I slot
    I, ///< integer unit only
    M, ///< memory unit only
    F, ///< floating-point unit only
    B, ///< branch unit only
};

/** Static metadata for one opcode. */
struct OpcodeInfo
{
    const char *name;
    FuClass fu;
    int latency;     ///< result latency in cycles (loads: L1-hit latency)
    bool is_load;
    bool is_store;
    bool is_branch;  ///< any control transfer (br/call/ret/chk)
    bool is_call;
    bool is_ret;
    bool has_side_effect; ///< must not be speculated or dead-code removed
};

namespace detail {

// Latencies follow the Itanium 2 bypass network: ALU 1 cycle, integer
// load 1 cycle on an L1D hit, FP arithmetic 4 cycles, integer multiply 6
// (xma via the FP unit), divide ~24 (frcpa Newton-Raphson sequence),
// FP loads 6 (they bypass L1D and are served from L2).
inline constexpr OpcodeInfo kOpcodeTable[] = {
    //                      name     fu          lat  ld     st     br     call   ret    side
    /* MOV      */ {"mov",      FuClass::A, 1, false, false, false, false, false, false},
    /* MOVI     */ {"movi",     FuClass::A, 1, false, false, false, false, false, false},
    /* MOVA     */ {"mova",     FuClass::A, 1, false, false, false, false, false, false},
    /* MOVFN    */ {"movfn",    FuClass::A, 1, false, false, false, false, false, false},
    /* MOVP     */ {"movp",     FuClass::A, 1, false, false, false, false, false, false},
    /* ADD      */ {"add",      FuClass::A, 1, false, false, false, false, false, false},
    /* SUB      */ {"sub",      FuClass::A, 1, false, false, false, false, false, false},
    /* AND      */ {"and",      FuClass::A, 1, false, false, false, false, false, false},
    /* OR       */ {"or",       FuClass::A, 1, false, false, false, false, false, false},
    /* XOR      */ {"xor",      FuClass::A, 1, false, false, false, false, false, false},
    /* ADDI     */ {"addi",     FuClass::A, 1, false, false, false, false, false, false},
    /* SUBI     */ {"subi",     FuClass::A, 1, false, false, false, false, false, false},
    /* ANDI     */ {"andi",     FuClass::A, 1, false, false, false, false, false, false},
    /* ORI      */ {"ori",      FuClass::A, 1, false, false, false, false, false, false},
    /* XORI     */ {"xori",     FuClass::A, 1, false, false, false, false, false, false},
    /* CMP      */ {"cmp",      FuClass::A, 1, false, false, false, false, false, false},
    /* CMPI     */ {"cmpi",     FuClass::A, 1, false, false, false, false, false, false},
    /* SHL      */ {"shl",      FuClass::I, 1, false, false, false, false, false, false},
    /* SHR      */ {"shr",      FuClass::I, 1, false, false, false, false, false, false},
    /* SAR      */ {"sar",      FuClass::I, 1, false, false, false, false, false, false},
    /* SHLI     */ {"shli",     FuClass::I, 1, false, false, false, false, false, false},
    /* SHRI     */ {"shri",     FuClass::I, 1, false, false, false, false, false, false},
    /* SARI     */ {"sari",     FuClass::I, 1, false, false, false, false, false, false},
    /* SXT      */ {"sxt",      FuClass::I, 1, false, false, false, false, false, false},
    /* ZXT      */ {"zxt",      FuClass::I, 1, false, false, false, false, false, false},
    /* MUL      */ {"mul",      FuClass::F, 6, false, false, false, false, false, false},
    /* DIV      */ {"div",      FuClass::F, 24, false, false, false, false, false, false},
    /* REM      */ {"rem",      FuClass::F, 24, false, false, false, false, false, false},
    /* LD       */ {"ld",       FuClass::M, 1, true,  false, false, false, false, false},
    /* ST       */ {"st",       FuClass::M, 1, false, true,  false, false, false, true},
    /* LDF      */ {"ldf",      FuClass::M, 6, true,  false, false, false, false, false},
    /* STF      */ {"stf",      FuClass::M, 1, false, true,  false, false, false, true},
    /* FADD     */ {"fadd",     FuClass::F, 4, false, false, false, false, false, false},
    /* FSUB     */ {"fsub",     FuClass::F, 4, false, false, false, false, false, false},
    /* FMUL     */ {"fmul",     FuClass::F, 4, false, false, false, false, false, false},
    /* FDIV     */ {"fdiv",     FuClass::F, 24, false, false, false, false, false, false},
    /* FMA      */ {"fma",      FuClass::F, 4, false, false, false, false, false, false},
    /* FNEG     */ {"fneg",     FuClass::F, 4, false, false, false, false, false, false},
    /* FCMP     */ {"fcmp",     FuClass::F, 2, false, false, false, false, false, false},
    /* CVTFI    */ {"cvtfi",    FuClass::F, 4, false, false, false, false, false, false},
    /* CVTIF    */ {"cvtif",    FuClass::F, 4, false, false, false, false, false, false},
    /* BR       */ {"br",       FuClass::B, 1, false, false, true,  false, false, true},
    /* BR_CALL  */ {"br.call",  FuClass::B, 1, false, false, true,  true,  false, true},
    /* BR_ICALL */ {"br.icall", FuClass::B, 1, false, false, true,  true,  false, true},
    /* BR_RET   */ {"br.ret",   FuClass::B, 1, false, false, true,  false, true,  true},
    /* CHK_S    */ {"chk.s",    FuClass::I, 1, false, false, true,  false, false, true},
    /* ALLOC    */ {"alloc",    FuClass::M, 1, false, false, false, false, false, true},
    /* NOP      */ {"nop",      FuClass::A, 1, false, false, false, false, false, false},
    // chk.a carries has_side_effect so no transform ever moves, guards
    // or dead-code-removes the check away from its original site; it is
    // still is_load (the architected semantics are an idempotent reload)
    // so the DAG keeps it ordered against may-aliasing stores.
    /* LD_A     */ {"ld.a",     FuClass::M, 1, true,  false, false, false, false, false},
    /* CHK_A    */ {"chk.a",    FuClass::M, 1, true,  false, false, false, false, true},
};

static_assert(sizeof(kOpcodeTable) / sizeof(kOpcodeTable[0]) ==
                  static_cast<size_t>(Opcode::NumOpcodes),
              "opcode table out of sync");

} // namespace detail

/** Lookup static metadata. Header-inline: this runs once per simulated
 *  instruction, so the table indexing must fold into the caller. Opcode
 *  values come from the enum, so the index is in range by construction
 *  (the static_assert above keeps the table in sync). */
inline const OpcodeInfo &
opcodeInfo(Opcode op)
{
    return detail::kOpcodeTable[static_cast<size_t>(op)];
}

/** Condition mnemonic ("eq", "ne", ...). */
const char *cmpCondName(CmpCond c);
/** Compare-type mnemonic ("", "unc", "and", "or"). */
const char *cmpTypeName(CmpType t);

} // namespace epic

#endif // EPIC_IR_OPCODE_H
