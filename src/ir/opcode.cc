#include "ir/opcode.h"

#include <array>

#include "support/logging.h"

namespace epic {

namespace {

// Latencies follow the Itanium 2 bypass network: ALU 1 cycle, integer
// load 1 cycle on an L1D hit, FP arithmetic 4 cycles, integer multiply 6
// (xma via the FP unit), divide ~24 (frcpa Newton-Raphson sequence),
// FP loads 6 (they bypass L1D and are served from L2).
constexpr OpcodeInfo kTable[] = {
    //                      name     fu          lat  ld     st     br     call   ret    side
    /* MOV      */ {"mov",      FuClass::A, 1, false, false, false, false, false, false},
    /* MOVI     */ {"movi",     FuClass::A, 1, false, false, false, false, false, false},
    /* MOVA     */ {"mova",     FuClass::A, 1, false, false, false, false, false, false},
    /* MOVFN    */ {"movfn",    FuClass::A, 1, false, false, false, false, false, false},
    /* MOVP     */ {"movp",     FuClass::A, 1, false, false, false, false, false, false},
    /* ADD      */ {"add",      FuClass::A, 1, false, false, false, false, false, false},
    /* SUB      */ {"sub",      FuClass::A, 1, false, false, false, false, false, false},
    /* AND      */ {"and",      FuClass::A, 1, false, false, false, false, false, false},
    /* OR       */ {"or",       FuClass::A, 1, false, false, false, false, false, false},
    /* XOR      */ {"xor",      FuClass::A, 1, false, false, false, false, false, false},
    /* ADDI     */ {"addi",     FuClass::A, 1, false, false, false, false, false, false},
    /* SUBI     */ {"subi",     FuClass::A, 1, false, false, false, false, false, false},
    /* ANDI     */ {"andi",     FuClass::A, 1, false, false, false, false, false, false},
    /* ORI      */ {"ori",      FuClass::A, 1, false, false, false, false, false, false},
    /* XORI     */ {"xori",     FuClass::A, 1, false, false, false, false, false, false},
    /* CMP      */ {"cmp",      FuClass::A, 1, false, false, false, false, false, false},
    /* CMPI     */ {"cmpi",     FuClass::A, 1, false, false, false, false, false, false},
    /* SHL      */ {"shl",      FuClass::I, 1, false, false, false, false, false, false},
    /* SHR      */ {"shr",      FuClass::I, 1, false, false, false, false, false, false},
    /* SAR      */ {"sar",      FuClass::I, 1, false, false, false, false, false, false},
    /* SHLI     */ {"shli",     FuClass::I, 1, false, false, false, false, false, false},
    /* SHRI     */ {"shri",     FuClass::I, 1, false, false, false, false, false, false},
    /* SARI     */ {"sari",     FuClass::I, 1, false, false, false, false, false, false},
    /* SXT      */ {"sxt",      FuClass::I, 1, false, false, false, false, false, false},
    /* ZXT      */ {"zxt",      FuClass::I, 1, false, false, false, false, false, false},
    /* MUL      */ {"mul",      FuClass::F, 6, false, false, false, false, false, false},
    /* DIV      */ {"div",      FuClass::F, 24, false, false, false, false, false, false},
    /* REM      */ {"rem",      FuClass::F, 24, false, false, false, false, false, false},
    /* LD       */ {"ld",       FuClass::M, 1, true,  false, false, false, false, false},
    /* ST       */ {"st",       FuClass::M, 1, false, true,  false, false, false, true},
    /* LDF      */ {"ldf",      FuClass::M, 6, true,  false, false, false, false, false},
    /* STF      */ {"stf",      FuClass::M, 1, false, true,  false, false, false, true},
    /* FADD     */ {"fadd",     FuClass::F, 4, false, false, false, false, false, false},
    /* FSUB     */ {"fsub",     FuClass::F, 4, false, false, false, false, false, false},
    /* FMUL     */ {"fmul",     FuClass::F, 4, false, false, false, false, false, false},
    /* FDIV     */ {"fdiv",     FuClass::F, 24, false, false, false, false, false, false},
    /* FMA      */ {"fma",      FuClass::F, 4, false, false, false, false, false, false},
    /* FNEG     */ {"fneg",     FuClass::F, 4, false, false, false, false, false, false},
    /* FCMP     */ {"fcmp",     FuClass::F, 2, false, false, false, false, false, false},
    /* CVTFI    */ {"cvtfi",    FuClass::F, 4, false, false, false, false, false, false},
    /* CVTIF    */ {"cvtif",    FuClass::F, 4, false, false, false, false, false, false},
    /* BR       */ {"br",       FuClass::B, 1, false, false, true,  false, false, true},
    /* BR_CALL  */ {"br.call",  FuClass::B, 1, false, false, true,  true,  false, true},
    /* BR_ICALL */ {"br.icall", FuClass::B, 1, false, false, true,  true,  false, true},
    /* BR_RET   */ {"br.ret",   FuClass::B, 1, false, false, true,  false, true,  true},
    /* CHK_S    */ {"chk.s",    FuClass::I, 1, false, false, true,  false, false, true},
    /* ALLOC    */ {"alloc",    FuClass::M, 1, false, false, false, false, false, true},
    /* NOP      */ {"nop",      FuClass::A, 1, false, false, false, false, false, false},
};

static_assert(sizeof(kTable) / sizeof(kTable[0]) ==
                  static_cast<size_t>(Opcode::NumOpcodes),
              "opcode table out of sync");

} // namespace

const OpcodeInfo &
opcodeInfo(Opcode op)
{
    auto idx = static_cast<size_t>(op);
    epic_assert(idx < static_cast<size_t>(Opcode::NumOpcodes));
    return kTable[idx];
}

const char *
cmpCondName(CmpCond c)
{
    switch (c) {
      case CmpCond::EQ: return "eq";
      case CmpCond::NE: return "ne";
      case CmpCond::LT: return "lt";
      case CmpCond::LE: return "le";
      case CmpCond::GT: return "gt";
      case CmpCond::GE: return "ge";
      case CmpCond::LTU: return "ltu";
      case CmpCond::GEU: return "geu";
    }
    return "?";
}

const char *
cmpTypeName(CmpType t)
{
    switch (t) {
      case CmpType::Norm: return "";
      case CmpType::Unc: return "unc";
      case CmpType::And: return "and";
      case CmpType::Or: return "or";
    }
    return "?";
}

} // namespace epic
