#include "ir/opcode.h"

namespace epic {

const char *
cmpCondName(CmpCond c)
{
    switch (c) {
      case CmpCond::EQ: return "eq";
      case CmpCond::NE: return "ne";
      case CmpCond::LT: return "lt";
      case CmpCond::LE: return "le";
      case CmpCond::GT: return "gt";
      case CmpCond::GE: return "ge";
      case CmpCond::LTU: return "ltu";
      case CmpCond::GEU: return "geu";
    }
    return "?";
}

const char *
cmpTypeName(CmpType t)
{
    switch (t) {
      case CmpType::Norm: return "";
      case CmpType::Unc: return "unc";
      case CmpType::And: return "and";
      case CmpType::Or: return "or";
    }
    return "?";
}

} // namespace epic
