#include "ir/printer.h"

#include <sstream>

namespace epic {

void
printFunction(std::ostream &os, const Function &f)
{
    os << "function " << f.name << " (fn" << f.id << ")";
    if (!f.params.empty()) {
        os << " params:";
        for (const Reg &p : f.params)
            os << " " << p.str();
    }
    if (f.reg_allocated)
        os << " [alloc " << f.stacked_regs << " stacked, "
           << f.spill_slots << " spill]";
    os << "\n";
    for (const auto &bp : f.blocks) {
        if (!bp)
            continue;
        const BasicBlock &b = *bp;
        os << "  bb" << b.id;
        if (b.id == f.entry)
            os << " (entry)";
        if (b.weight > 0)
            os << " weight=" << b.weight;
        if (b.cold)
            os << " cold";
        if (b.fallthrough >= 0)
            os << " ft=bb" << b.fallthrough;
        os << ":\n";
        if (!b.scheduled()) {
            for (const Instruction &inst : b.instrs)
                os << "    " << inst.str() << "\n";
        } else {
            for (const Bundle &bun : b.bundles) {
                os << "    {";
                for (int s = 0; s < 3; ++s) {
                    if (s)
                        os << "; ";
                    if (bun.slots[s] == kSlotNop)
                        os << "nop";
                    else
                        os << b.instrs[bun.slots[s]].str();
                }
                os << "}";
                if (bun.stop_after)
                    os << " ;;";
                if (bun.addr)
                    os << "  @0x" << std::hex << bun.addr << std::dec;
                os << "\n";
            }
        }
    }
}

void
printProgram(std::ostream &os, const Program &p)
{
    for (const DataSymbol &s : p.symbols) {
        os << "data @sym" << s.id << " " << s.name << " size=" << s.size;
        if (s.addr)
            os << " addr=0x" << std::hex << s.addr << std::dec;
        os << "\n";
    }
    for (const auto &f : p.funcs)
        if (f)
            printFunction(os, *f);
}

std::string
functionToString(const Function &f)
{
    std::ostringstream os;
    printFunction(os, f);
    return os.str();
}

} // namespace epic
