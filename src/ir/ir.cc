/**
 * @file
 * Implementations for the core IR classes: operand/instruction printing,
 * block successor computation, function statistics, and program layout.
 */
#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"
#include "ir/program.h"

#include <algorithm>
#include <sstream>

#include "support/logging.h"

namespace epic {

std::string
Operand::str() const
{
    std::ostringstream os;
    switch (kind) {
      case Kind::None:
        os << "<none>";
        break;
      case Kind::Reg:
        os << reg.str();
        break;
      case Kind::Imm:
        os << imm;
        break;
      case Kind::FImm:
        os << fimm;
        break;
      case Kind::Sym:
        os << "@sym" << sym;
        if (imm)
            os << "+" << imm;
        break;
      case Kind::Func:
        os << "@fn" << func;
        break;
    }
    return os.str();
}

std::string
Instruction::str() const
{
    std::ostringstream os;
    if (hasGuard())
        os << "(" << guard.str() << ") ";
    os << info().name;
    if (op == Opcode::CMP || op == Opcode::CMPI || op == Opcode::FCMP) {
        os << "." << cmpCondName(cond);
        if (ctype != CmpType::Norm)
            os << "." << cmpTypeName(ctype);
    }
    if (isMem())
        os << size * 8;
    if (spec)
        os << ".s";
    os << " ";
    bool first = true;
    for (const Reg &d : dests) {
        os << (first ? "" : ", ") << d.str();
        first = false;
    }
    if (!dests.empty() && !srcs.empty())
        os << " = ";
    first = true;
    for (const Operand &s : srcs) {
        os << (first ? "" : ", ") << s.str();
        first = false;
    }
    if (target >= 0)
        os << " -> bb" << target;
    if (callee >= 0)
        os << " [fn" << callee << "]";
    return os.str();
}

bool
BasicBlock::endsInUnconditionalTransfer() const
{
    if (instrs.empty())
        return false;
    const Instruction &last = instrs.back();
    if (last.isRet())
        return !last.hasGuard();
    if (last.op == Opcode::BR)
        return !last.hasGuard();
    return false;
}

std::vector<int>
BasicBlock::successorIds() const
{
    std::vector<int> out;
    for (const Instruction &inst : instrs) {
        if (inst.target >= 0 &&
            (inst.op == Opcode::BR || inst.op == Opcode::CHK_S)) {
            if (std::find(out.begin(), out.end(), inst.target) == out.end())
                out.push_back(inst.target);
        }
    }
    if (fallthrough >= 0 &&
        std::find(out.begin(), out.end(), fallthrough) == out.end()) {
        out.push_back(fallthrough);
    }
    return out;
}

int
Function::liveBlockCount() const
{
    int n = 0;
    for (const auto &b : blocks)
        if (b)
            ++n;
    return n;
}

int
Function::staticInstrCount() const
{
    int n = 0;
    for (const auto &b : blocks)
        if (b)
            n += static_cast<int>(b->instrs.size());
    return n;
}

int
Function::staticBundleCount() const
{
    int n = 0;
    for (const auto &b : blocks)
        if (b)
            n += static_cast<int>(b->bundles.size());
    return n;
}

Function *
Program::findFunc(const std::string &name)
{
    for (auto &f : funcs)
        if (f && f->name == name)
            return f.get();
    return nullptr;
}

int
Program::addSymbol(std::string name, uint64_t size, uint32_t attr)
{
    DataSymbol s;
    s.id = static_cast<int>(symbols.size());
    s.name = std::move(name);
    s.size = size;
    s.attr = attr;
    symbols.push_back(std::move(s));
    return symbols.back().id;
}

int
Program::addSymbolInit(std::string name, std::vector<uint8_t> init,
                       uint32_t attr)
{
    int id = addSymbol(std::move(name), init.size(), attr);
    symbols[id].init = std::move(init);
    return id;
}

void
Program::layoutData()
{
    uint64_t addr = kDataBase;
    for (DataSymbol &s : symbols) {
        uint64_t align = std::max<uint64_t>(s.align, 1);
        addr = (addr + align - 1) & ~(align - 1);
        s.addr = addr;
        addr += std::max<uint64_t>(s.size, 1);
    }
}

uint64_t
Program::symbolAddr(int sym_id) const
{
    epic_assert(sym_id >= 0 && sym_id < static_cast<int>(symbols.size()),
                "bad symbol id ", sym_id);
    epic_assert(symbols[sym_id].addr != 0, "layoutData() has not run");
    return symbols[sym_id].addr;
}

int
Program::staticInstrCount() const
{
    int n = 0;
    for (const auto &f : funcs)
        if (f)
            n += f->staticInstrCount();
    return n;
}

std::unique_ptr<Function>
Function::clone(uint64_t arena_byte_budget) const
{
    auto nf = std::make_unique<Function>(id, name);
    if (arena_byte_budget)
        nf->arena().setByteBudget(arena_byte_budget);
    cloneInto(*nf);
    return nf;
}

void
Function::cloneInto(Function &dst) const
{
    epic_assert(&dst != this, "cloneInto self");
    // One watermark rollback reclaims everything the previous occupant
    // of dst allocated; retained chunks back the copy below.
    dst.arena_.reset();
    dst.blocks.rebind(&dst.arena_);

    dst.name = name;
    dst.attr = attr;
    dst.params = params;
    dst.entry = entry;
    dst.weight = weight;
    dst.reg_allocated = reg_allocated;
    dst.stacked_regs = stacked_regs;
    dst.spill_slots = spill_slots;
    dst.next_virt_ = next_virt_;

    dst.blocks.reserve(blocks.size());
    for (const BasicBlock *b : blocks) {
        if (!b) {
            dst.blocks.push_back(nullptr);
            continue;
        }
        BasicBlock *nb = dst.arena_.create<BasicBlock>(b->id, &dst.arena_);
        nb->fallthrough = b->fallthrough;
        nb->weight = b->weight;
        nb->cold = b->cold;
        // Bulk-copy the instruction and bundle arrays (memcpy of
        // trivially copyable elements)...
        nb->instrs.assign(b->instrs.begin(), b->instrs.end());
        nb->bundles.assign(b->bundles.begin(), b->bundles.end());
        // ...then re-home the only out-of-line instruction state, the
        // indirect-call profile spans, into the destination arena.
        for (Instruction &inst : nb->instrs)
            inst.reattachProf(dst.arena_);
        dst.blocks.push_back(nb);
    }
}

std::unique_ptr<Program>
Program::clone() const
{
    auto out = std::make_unique<Program>();
    out->symbols = symbols;
    out->entry_func = entry_func;
    for (const auto &f : funcs)
        out->funcs.push_back(f ? f->clone() : nullptr);
    return out;
}

} // namespace epic
