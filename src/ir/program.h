/**
 * @file
 * Whole-program container: functions, global data symbols, and the data
 * memory layout. Code layout (bundle addresses) is assigned separately by
 * the block-layout pass after scheduling.
 */
#ifndef EPIC_IR_PROGRAM_H
#define EPIC_IR_PROGRAM_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.h"

namespace epic {

/** Data symbol attribute flags. */
enum SymAttr : uint32_t {
    kSymNone = 0,
    kSymReadOnly = 1u << 0,
};

/** A global data object. */
struct DataSymbol
{
    int id = -1;
    std::string name;
    uint64_t size = 0;
    uint64_t align = 16;
    uint32_t attr = kSymNone;
    std::vector<uint8_t> init; ///< initial bytes (zero-filled if shorter)
    uint64_t addr = 0;         ///< assigned by layoutData()
};

/** A whole program. */
class Program
{
  public:
    /// Base virtual address of the data segment.
    static constexpr uint64_t kDataBase = 0x100000;
    /// Base virtual address of the code segment.
    static constexpr uint64_t kTextBase = 0x4000000;
    /// Stack top (grows down) and reserved size.
    static constexpr uint64_t kStackTop = 0x7fff0000;
    static constexpr uint64_t kStackSize = 1 << 20;

    std::vector<std::unique_ptr<Function>> funcs;
    std::vector<DataSymbol> symbols;
    int entry_func = -1;

    /** Create a function; returns a non-owning pointer. */
    Function *
    newFunction(std::string name)
    {
        int fid = static_cast<int>(funcs.size());
        funcs.push_back(std::make_unique<Function>(fid, std::move(name)));
        return funcs[fid].get();
    }

    Function *
    func(int fid)
    {
        return fid >= 0 && fid < static_cast<int>(funcs.size())
                   ? funcs[fid].get()
                   : nullptr;
    }
    const Function *
    func(int fid) const
    {
        return fid >= 0 && fid < static_cast<int>(funcs.size())
                   ? funcs[fid].get()
                   : nullptr;
    }

    /** Look a function up by name (null if absent). */
    Function *findFunc(const std::string &name);

    /** Create a zero-initialized data symbol; returns its id. */
    int addSymbol(std::string name, uint64_t size,
                  uint32_t attr = kSymNone);

    /** Create an initialized data symbol; returns its id. */
    int addSymbolInit(std::string name, std::vector<uint8_t> init,
                      uint32_t attr = kSymNone);

    /** Assign data-segment addresses to all symbols. */
    void layoutData();

    /** Address of a symbol (layoutData must have run). */
    uint64_t symbolAddr(int sym_id) const;

    /** Total static instruction count across all functions. */
    int staticInstrCount() const;

    /** Deep-copy the whole program (used to compile one source program
     *  under several configurations). */
    std::unique_ptr<Program> clone() const;
};

} // namespace epic

#endif // EPIC_IR_PROGRAM_H
