/**
 * @file
 * Human-readable dumping of functions and programs, including schedule
 * (issue-group/bundle) annotations once a function has been scheduled.
 */
#ifndef EPIC_IR_PRINTER_H
#define EPIC_IR_PRINTER_H

#include <ostream>
#include <string>

#include "ir/program.h"

namespace epic {

/** Print one function (blocks in id order, bundles if scheduled). */
void printFunction(std::ostream &os, const Function &f);

/** Print the whole program. */
void printProgram(std::ostream &os, const Program &p);

/** Convenience: function dump as string. */
std::string functionToString(const Function &f);

} // namespace epic

#endif // EPIC_IR_PRINTER_H
