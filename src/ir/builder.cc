#include "ir/builder.h"

#include "support/logging.h"

namespace epic {

Function *
IRBuilder::beginFunction(const std::string &name, int nparams, uint32_t attr)
{
    fn_ = prog_.newFunction(name);
    fn_->attr = attr;
    bb_ = fn_->newBlock();
    fn_->entry = bb_->id;
    for (int i = 0; i < nparams; ++i)
        fn_->params.push_back(fn_->makeReg(RegClass::Gr));
    return fn_;
}

void
IRBuilder::setFunction(Function *f)
{
    fn_ = f;
    bb_ = nullptr;
}

BasicBlock *
IRBuilder::newBlock()
{
    epic_assert(fn_, "no current function");
    return fn_->newBlock();
}

Reg
IRBuilder::param(int i) const
{
    epic_assert(fn_ && i >= 0 && i < static_cast<int>(fn_->params.size()),
                "bad parameter index");
    return fn_->params[i];
}

Instruction &
IRBuilder::push(Opcode op, Reg guard)
{
    epic_assert(bb_, "no insertion block");
    Instruction inst;
    inst.op = op;
    inst.guard = guard;
    bb_->instrs.push_back(std::move(inst));
    return bb_->instrs.back();
}

Instruction &
IRBuilder::emit(Instruction inst)
{
    epic_assert(bb_, "no insertion block");
    bb_->instrs.push_back(std::move(inst));
    return bb_->instrs.back();
}

Reg
IRBuilder::movi(int64_t v, Reg guard)
{
    Reg d = gr();
    moviTo(d, v, guard);
    return d;
}

void
IRBuilder::moviTo(Reg d, int64_t v, Reg guard)
{
    Instruction &inst = push(Opcode::MOVI, guard);
    inst.dests = {d};
    inst.srcs = {Operand::makeImm(v)};
}

Reg
IRBuilder::mov(Reg s, Reg guard)
{
    Reg d = gr();
    movTo(d, s, guard);
    return d;
}

void
IRBuilder::movTo(Reg d, Reg s, Reg guard)
{
    Instruction &inst = push(Opcode::MOV, guard);
    inst.dests = {d};
    inst.srcs = {Operand::makeReg(s)};
}

Reg
IRBuilder::mova(int sym, int64_t offset, Reg guard)
{
    Reg d = gr();
    Instruction &inst = push(Opcode::MOVA, guard);
    inst.dests = {d};
    inst.srcs = {Operand::makeSym(sym, offset)};
    return d;
}

Reg
IRBuilder::movfn(const Function *f, Reg guard)
{
    Reg d = gr();
    Instruction &inst = push(Opcode::MOVFN, guard);
    inst.dests = {d};
    inst.srcs = {Operand::makeFunc(f->id)};
    return d;
}

void
IRBuilder::movp(Reg pd, bool value, Reg guard)
{
    Instruction &inst = push(Opcode::MOVP, guard);
    inst.dests = {pd};
    inst.srcs = {Operand::makeImm(value ? 1 : 0)};
}

namespace {

Reg
binop(IRBuilder &b, Opcode op, Reg a, Reg rhs, Reg guard, Reg d)
{
    Instruction inst;
    inst.op = op;
    inst.guard = guard;
    inst.dests = {d};
    inst.srcs = {Operand::makeReg(a), Operand::makeReg(rhs)};
    b.emit(std::move(inst));
    return d;
}

Reg
binopImm(IRBuilder &b, Opcode op, Reg a, int64_t imm, Reg guard, Reg d)
{
    Instruction inst;
    inst.op = op;
    inst.guard = guard;
    inst.dests = {d};
    inst.srcs = {Operand::makeReg(a), Operand::makeImm(imm)};
    b.emit(std::move(inst));
    return d;
}

} // namespace

Reg
IRBuilder::add(Reg a, Reg b, Reg guard)
{
    return binop(*this, Opcode::ADD, a, b, guard, gr());
}

void
IRBuilder::addTo(Reg d, Reg a, Reg b, Reg guard)
{
    binop(*this, Opcode::ADD, a, b, guard, d);
}

Reg
IRBuilder::addi(Reg a, int64_t imm, Reg guard)
{
    return binopImm(*this, Opcode::ADDI, a, imm, guard, gr());
}

void
IRBuilder::addiTo(Reg d, Reg a, int64_t imm, Reg guard)
{
    binopImm(*this, Opcode::ADDI, a, imm, guard, d);
}

Reg
IRBuilder::sub(Reg a, Reg b, Reg guard)
{
    return binop(*this, Opcode::SUB, a, b, guard, gr());
}

Reg
IRBuilder::subi(Reg a, int64_t imm, Reg guard)
{
    return binopImm(*this, Opcode::SUBI, a, imm, guard, gr());
}

Reg
IRBuilder::mul(Reg a, Reg b, Reg guard)
{
    return binop(*this, Opcode::MUL, a, b, guard, gr());
}

Reg
IRBuilder::div(Reg a, Reg b, Reg guard)
{
    return binop(*this, Opcode::DIV, a, b, guard, gr());
}

Reg
IRBuilder::rem(Reg a, Reg b, Reg guard)
{
    return binop(*this, Opcode::REM, a, b, guard, gr());
}

Reg
IRBuilder::and_(Reg a, Reg b, Reg guard)
{
    return binop(*this, Opcode::AND, a, b, guard, gr());
}

Reg
IRBuilder::andi(Reg a, int64_t imm, Reg guard)
{
    return binopImm(*this, Opcode::ANDI, a, imm, guard, gr());
}

Reg
IRBuilder::or_(Reg a, Reg b, Reg guard)
{
    return binop(*this, Opcode::OR, a, b, guard, gr());
}

Reg
IRBuilder::ori(Reg a, int64_t imm, Reg guard)
{
    return binopImm(*this, Opcode::ORI, a, imm, guard, gr());
}

Reg
IRBuilder::xor_(Reg a, Reg b, Reg guard)
{
    return binop(*this, Opcode::XOR, a, b, guard, gr());
}

Reg
IRBuilder::xori(Reg a, int64_t imm, Reg guard)
{
    return binopImm(*this, Opcode::XORI, a, imm, guard, gr());
}

Reg
IRBuilder::shli(Reg a, int64_t sh, Reg guard)
{
    return binopImm(*this, Opcode::SHLI, a, sh, guard, gr());
}

Reg
IRBuilder::shri(Reg a, int64_t sh, Reg guard)
{
    return binopImm(*this, Opcode::SHRI, a, sh, guard, gr());
}

Reg
IRBuilder::sari(Reg a, int64_t sh, Reg guard)
{
    return binopImm(*this, Opcode::SARI, a, sh, guard, gr());
}

Reg
IRBuilder::shl(Reg a, Reg b, Reg guard)
{
    return binop(*this, Opcode::SHL, a, b, guard, gr());
}

Reg
IRBuilder::shr(Reg a, Reg b, Reg guard)
{
    return binop(*this, Opcode::SHR, a, b, guard, gr());
}

std::pair<Reg, Reg>
IRBuilder::cmp(CmpCond cond, Reg a, Reg b, CmpType ctype, Reg guard)
{
    Reg pt = pr(), pf = pr();
    Instruction &inst = push(Opcode::CMP, guard);
    inst.cond = cond;
    inst.ctype = ctype;
    inst.dests = {pt, pf};
    inst.srcs = {Operand::makeReg(a), Operand::makeReg(b)};
    return {pt, pf};
}

std::pair<Reg, Reg>
IRBuilder::cmpi(CmpCond cond, Reg a, int64_t imm, CmpType ctype, Reg guard)
{
    Reg pt = pr(), pf = pr();
    Instruction &inst = push(Opcode::CMPI, guard);
    inst.cond = cond;
    inst.ctype = ctype;
    inst.dests = {pt, pf};
    inst.srcs = {Operand::makeReg(a), Operand::makeImm(imm)};
    return {pt, pf};
}

Reg
IRBuilder::ld(Reg addr, int size, MemHint hint, Reg guard)
{
    Reg d = gr();
    ldTo(d, addr, size, hint, guard);
    return d;
}

void
IRBuilder::ldTo(Reg d, Reg addr, int size, MemHint hint, Reg guard)
{
    Instruction &inst = push(Opcode::LD, guard);
    inst.dests = {d};
    inst.srcs = {Operand::makeReg(addr)};
    inst.size = static_cast<uint8_t>(size);
    inst.sym_hint = hint.sym;
    inst.alias_group = hint.group;
}

void
IRBuilder::st(Reg addr, Reg val, int size, MemHint hint, Reg guard)
{
    Instruction &inst = push(Opcode::ST, guard);
    inst.srcs = {Operand::makeReg(addr), Operand::makeReg(val)};
    inst.size = static_cast<uint8_t>(size);
    inst.sym_hint = hint.sym;
    inst.alias_group = hint.group;
}

Reg
IRBuilder::ldf(Reg addr, MemHint hint, Reg guard)
{
    Reg d = fr();
    Instruction &inst = push(Opcode::LDF, guard);
    inst.dests = {d};
    inst.srcs = {Operand::makeReg(addr)};
    inst.sym_hint = hint.sym;
    inst.alias_group = hint.group;
    return d;
}

void
IRBuilder::stf(Reg addr, Reg val, MemHint hint, Reg guard)
{
    Instruction &inst = push(Opcode::STF, guard);
    inst.srcs = {Operand::makeReg(addr), Operand::makeReg(val)};
    inst.sym_hint = hint.sym;
    inst.alias_group = hint.group;
}

Reg
IRBuilder::fmovi(double v, Reg guard)
{
    Reg d = fr();
    Instruction &inst = push(Opcode::CVTIF, guard);
    // Materialize an FP constant as cvt of an integer immediate when the
    // value is integral; otherwise route through an FImm operand on FADD.
    inst.op = Opcode::FADD;
    inst.dests = {d};
    inst.srcs = {Operand::makeFImm(v), Operand::makeFImm(0.0)};
    return d;
}

Reg
IRBuilder::fadd(Reg a, Reg b, Reg guard)
{
    Reg d = fr();
    Instruction &inst = push(Opcode::FADD, guard);
    inst.dests = {d};
    inst.srcs = {Operand::makeReg(a), Operand::makeReg(b)};
    return d;
}

Reg
IRBuilder::fsub(Reg a, Reg b, Reg guard)
{
    Reg d = fr();
    Instruction &inst = push(Opcode::FSUB, guard);
    inst.dests = {d};
    inst.srcs = {Operand::makeReg(a), Operand::makeReg(b)};
    return d;
}

Reg
IRBuilder::fmul(Reg a, Reg b, Reg guard)
{
    Reg d = fr();
    Instruction &inst = push(Opcode::FMUL, guard);
    inst.dests = {d};
    inst.srcs = {Operand::makeReg(a), Operand::makeReg(b)};
    return d;
}

Reg
IRBuilder::cvtif(Reg a, Reg guard)
{
    Reg d = fr();
    Instruction &inst = push(Opcode::CVTIF, guard);
    inst.dests = {d};
    inst.srcs = {Operand::makeReg(a)};
    return d;
}

Reg
IRBuilder::cvtfi(Reg a, Reg guard)
{
    Reg d = gr();
    Instruction &inst = push(Opcode::CVTFI, guard);
    inst.dests = {d};
    inst.srcs = {Operand::makeReg(a)};
    return d;
}

void
IRBuilder::br(Reg pred, BasicBlock *tgt)
{
    Instruction &inst = push(Opcode::BR, pred);
    inst.target = tgt->id;
}

void
IRBuilder::jump(BasicBlock *tgt)
{
    Instruction &inst = push(Opcode::BR, kPrTrue);
    inst.target = tgt->id;
}

Reg
IRBuilder::call(const Function *f, std::initializer_list<Reg> args,
                Reg guard)
{
    Reg d = gr();
    Instruction &inst = push(Opcode::BR_CALL, guard);
    inst.dests = {d};
    inst.callee = f->id;
    for (Reg a : args)
        inst.srcs.push_back(Operand::makeReg(a));
    return d;
}

void
IRBuilder::callv(const Function *f, std::initializer_list<Reg> args,
                 Reg guard)
{
    Instruction &inst = push(Opcode::BR_CALL, guard);
    inst.callee = f->id;
    for (Reg a : args)
        inst.srcs.push_back(Operand::makeReg(a));
}

Reg
IRBuilder::icall(Reg fn_token, std::initializer_list<Reg> args, Reg guard)
{
    Reg d = gr();
    Instruction &inst = push(Opcode::BR_ICALL, guard);
    inst.dests = {d};
    inst.srcs = {Operand::makeReg(fn_token)};
    for (Reg a : args)
        inst.srcs.push_back(Operand::makeReg(a));
    return d;
}

void
IRBuilder::ret(Reg val, Reg guard)
{
    Instruction &inst = push(Opcode::BR_RET, guard);
    if (val.valid())
        inst.srcs = {Operand::makeReg(val)};
}

} // namespace epic
