/**
 * @file
 * IR structural verifier.
 *
 * Checks control-flow well-formedness, per-opcode operand signatures,
 * register-class consistency, post-allocation physical-register bounds,
 * and post-scheduling bundle invariants (complete coverage, branch
 * placement, and the IA-64 no-intra-group-RAW/WAW rule with the
 * compare-to-branch exception).
 */
#ifndef EPIC_IR_VERIFIER_H
#define EPIC_IR_VERIFIER_H

#include <string>
#include <vector>

#include "ir/program.h"

namespace epic {

/** Verify one function; returns human-readable error strings (empty=ok). */
std::vector<std::string> verifyFunction(const Function &f);

/** Verify a whole program (also checks call targets). */
std::vector<std::string> verifyProgram(const Program &p);

/** Panic with the first error if verification fails. */
void verifyOrDie(const Program &p, const char *phase);

} // namespace epic

#endif // EPIC_IR_VERIFIER_H
