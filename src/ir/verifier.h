/**
 * @file
 * IR structural verifier.
 *
 * Checks control-flow well-formedness, per-opcode operand signatures,
 * register-class consistency, post-allocation physical-register bounds,
 * and post-scheduling bundle invariants (complete coverage, branch
 * placement, and the IA-64 no-intra-group-RAW/WAW rule with the
 * compare-to-branch exception).
 */
#ifndef EPIC_IR_VERIFIER_H
#define EPIC_IR_VERIFIER_H

#include <string>
#include <vector>

#include "ir/program.h"

namespace epic {

/** Verify one function; returns human-readable error strings (empty=ok). */
std::vector<std::string> verifyFunction(const Function &f);

/** Verify a whole program (also checks call targets). */
std::vector<std::string> verifyProgram(const Program &p);

/**
 * Non-fatal whole-program verification for the compilation firewall:
 * the complete error list, each entry tagged with the phase (every
 * error already carries the offending function's name).
 */
struct VerifyReport
{
    std::string phase;
    std::vector<std::string> errors;

    bool ok() const { return errors.empty(); }
    /** All errors, one per line, "verify[phase]: ..." form. */
    std::string str() const;
};

/** Run verifyProgram and package the full result (never aborts). */
VerifyReport verifyAll(const Program &p, const char *phase);

/** Panic if verification fails, after printing *every* error with its
 *  function name and the phase that produced it. */
void verifyOrDie(const Program &p, const char *phase);

} // namespace epic

#endif // EPIC_IR_VERIFIER_H
