/**
 * @file
 * 32-bit index handles for IR entities (DESIGN.md §16).
 *
 * Blocks and instructions live in arena-backed dense arrays owned by
 * their Function; they are addressed by position, not by owning
 * pointer. These aliases name those positions in signatures. A handle
 * is stable across passes (deleted blocks leave a null slot rather than
 * renumbering) and meaningful only relative to its owning function —
 * kNoBlock / kNoInstr (-1) is the universal "none" value, matching the
 * IR's historical use of `int` ids.
 */
#ifndef EPIC_IR_HANDLES_H
#define EPIC_IR_HANDLES_H

#include <cstdint>

namespace epic {

using BlockId = int32_t; ///< index into Function::blocks (-1: none)
using InstrId = int32_t; ///< index into BasicBlock::instrs (-1: none)

inline constexpr BlockId kNoBlock = -1;
inline constexpr InstrId kNoInstr = -1;

} // namespace epic

#endif // EPIC_IR_HANDLES_H
