/**
 * @file
 * Basic block (more precisely: *scheduling block*) representation.
 *
 * Blocks are single-entry but may contain conditional branches anywhere in
 * their body (side exits), which is what makes superblocks and hyperblocks
 * representable directly. A block ends either by falling through to
 * `fallthrough`, or with an unconditional branch / return as its last
 * instruction.
 *
 * After scheduling, a block additionally carries its bundle sequence:
 * 3-slot IA-64 bundles with explicit NOPs, grouped into issue groups by
 * stop bits. Code addresses are assigned to bundles by the layout pass and
 * drive the I-cache model.
 */
#ifndef EPIC_IR_BASIC_BLOCK_H
#define EPIC_IR_BASIC_BLOCK_H

#include <array>
#include <cstdint>
#include <vector>

#include "ir/instruction.h"

namespace epic {

/// Slot value meaning "explicit NOP" in a bundle.
inline constexpr int16_t kSlotNop = -1;

/**
 * One 16-byte IA-64 bundle: a template id (index into the machine model's
 * template table) and three slots, each holding an instruction index
 * within the enclosing block or kSlotNop.
 */
struct Bundle
{
    uint8_t tmpl = 0;
    std::array<int16_t, 3> slots = {kSlotNop, kSlotNop, kSlotNop};
    bool stop_after = false; ///< issue-group boundary after this bundle
    uint64_t addr = 0;       ///< code address (layout pass)
};

/** A scheduling block. */
class BasicBlock
{
  public:
    explicit BasicBlock(int block_id) : id(block_id) {}

    int id;
    std::vector<Instruction> instrs;

    /// Fall-through successor block id; -1 when the block ends in an
    /// unconditional branch or return.
    int fallthrough = -1;

    /// Profile: number of times this block executed in the training run.
    double weight = 0.0;

    /// Layout: placed in the cold section (rarely-executed code).
    bool cold = false;

    /// Post-scheduling bundle sequence (empty before scheduling).
    std::vector<Bundle> bundles;

    /** Append an instruction; returns its index. */
    int
    append(Instruction inst)
    {
        instrs.push_back(std::move(inst));
        return static_cast<int>(instrs.size()) - 1;
    }

    /** True if the block has been scheduled into bundles. */
    bool scheduled() const { return !bundles.empty(); }

    /** Last instruction is an unconditional control transfer or return. */
    bool endsInUnconditionalTransfer() const;

    /** All successor block ids (branch targets + fallthrough), deduped. */
    std::vector<int> successorIds() const;
};

} // namespace epic

#endif // EPIC_IR_BASIC_BLOCK_H
