/**
 * @file
 * Basic block (more precisely: *scheduling block*) representation.
 *
 * Blocks are single-entry but may contain conditional branches anywhere in
 * their body (side exits), which is what makes superblocks and hyperblocks
 * representable directly. A block ends either by falling through to
 * `fallthrough`, or with an unconditional branch / return as its last
 * instruction.
 *
 * After scheduling, a block additionally carries its bundle sequence:
 * 3-slot IA-64 bundles with explicit NOPs, grouped into issue groups by
 * stop bits. Code addresses are assigned to bundles by the layout pass and
 * drive the I-cache model.
 */
#ifndef EPIC_IR_BASIC_BLOCK_H
#define EPIC_IR_BASIC_BLOCK_H

#include <array>
#include <cstdint>
#include <vector>

#include "ir/handles.h"
#include "ir/instruction.h"
#include "support/arena.h"

namespace epic {

/// Slot value meaning "explicit NOP" in a bundle.
inline constexpr int16_t kSlotNop = -1;

/**
 * One 16-byte IA-64 bundle: a template id (index into the machine model's
 * template table) and three slots, each holding an instruction index
 * within the enclosing block or kSlotNop.
 */
struct Bundle
{
    uint8_t tmpl = 0;
    std::array<int16_t, 3> slots = {kSlotNop, kSlotNop, kSlotNop};
    bool stop_after = false; ///< issue-group boundary after this bundle
    uint64_t addr = 0;       ///< code address (layout pass)
};

/**
 * A scheduling block. Lives in (and allocates from) its owning
 * function's arena: the block object itself is arena-created, and the
 * instruction/bundle arrays are ArenaVecs bound to the same arena, so a
 * whole function is torn down by one watermark rollback.
 */
class BasicBlock
{
  public:
    BasicBlock(BlockId block_id, Arena *a)
        : id(block_id), instrs(a), bundles(a)
    {
    }

    BlockId id;
    ArenaVec<Instruction> instrs;

    /// Fall-through successor block id; -1 when the block ends in an
    /// unconditional branch or return.
    BlockId fallthrough = kNoBlock;

    /// Profile: number of times this block executed in the training run.
    double weight = 0.0;

    /// Layout: placed in the cold section (rarely-executed code).
    bool cold = false;

    /// Post-scheduling bundle sequence (empty before scheduling).
    ArenaVec<Bundle> bundles;

    /** Append an instruction; returns its index. */
    InstrId
    append(const Instruction &inst)
    {
        instrs.push_back(inst);
        return static_cast<InstrId>(instrs.size()) - 1;
    }

    /** True if the block has been scheduled into bundles. */
    bool scheduled() const { return !bundles.empty(); }

    /** Last instruction is an unconditional control transfer or return. */
    bool endsInUnconditionalTransfer() const;

    /** All successor block ids (branch targets + fallthrough), deduped. */
    std::vector<int> successorIds() const;
};

} // namespace epic

#endif // EPIC_IR_BASIC_BLOCK_H
