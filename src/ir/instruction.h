/**
 * @file
 * Instruction representation for the EPIC IR (Lcode-like: non-SSA,
 * three-operand, fully predicated).
 *
 * Every instruction carries a guard predicate (kPrTrue when unconditional),
 * up to two destinations (parallel compares write a predicate pair), a
 * source list (calls may have up to eight argument sources), an optional
 * control-flow target, a memory access size, a control-speculation flag,
 * and provenance attributes used by the experiment harnesses to attribute
 * cache misses to the transformation that created the code (tail
 * duplication, loop peeling, ...), as the paper does in Section 4.1.
 */
#ifndef EPIC_IR_INSTRUCTION_H
#define EPIC_IR_INSTRUCTION_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/opcode.h"
#include "ir/reg.h"

namespace epic {

/** Operand: a register, an immediate, or a symbol/function reference. */
struct Operand
{
    enum class Kind : uint8_t { None, Reg, Imm, FImm, Sym, Func };

    Kind kind = Kind::None;
    Reg reg;
    int64_t imm = 0;    ///< integer immediate / symbol offset
    double fimm = 0.0;
    int32_t sym = -1;   ///< data symbol id (Kind::Sym)
    int32_t func = -1;  ///< function id (Kind::Func)

    Operand() = default;
    static Operand
    makeReg(Reg r)
    {
        Operand o;
        o.kind = Kind::Reg;
        o.reg = r;
        return o;
    }
    static Operand
    makeImm(int64_t v)
    {
        Operand o;
        o.kind = Kind::Imm;
        o.imm = v;
        return o;
    }
    static Operand
    makeFImm(double v)
    {
        Operand o;
        o.kind = Kind::FImm;
        o.fimm = v;
        return o;
    }
    static Operand
    makeSym(int32_t sym_id, int64_t offset)
    {
        Operand o;
        o.kind = Kind::Sym;
        o.sym = sym_id;
        o.imm = offset;
        return o;
    }
    static Operand
    makeFunc(int32_t func_id)
    {
        Operand o;
        o.kind = Kind::Func;
        o.func = func_id;
        return o;
    }

    bool isReg() const { return kind == Kind::Reg; }
    std::string str() const;
};

/**
 * Provenance attributes (bitmask). The I-cache experiments attribute
 * misses by these flags, reproducing the paper's Section 4.1 accounting
 * of tail-duplicated and residual-loop code.
 */
enum InstrAttr : uint32_t {
    kAttrNone = 0,
    kAttrTailDup = 1u << 0,    ///< created by tail duplication
    kAttrPeelCopy = 1u << 1,   ///< peeled-out loop iteration copy
    kAttrRemainder = 1u << 2,  ///< residual ("clean-up") loop body
    kAttrInlined = 1u << 3,    ///< inlined from another function
    kAttrPromoted = 1u << 4,   ///< predicate-promoted (speculative)
    kAttrSpecMoved = 1u << 5,  ///< moved above a branch (speculative)
    kAttrSpill = 1u << 6,      ///< register-allocator spill/fill code
    kAttrUnrolled = 1u << 7,   ///< loop-unroll copy
};

/** One IR instruction. */
class Instruction
{
  public:
    Opcode op = Opcode::NOP;
    Reg guard = kPrTrue;   ///< qualifying predicate
    std::vector<Reg> dests;
    std::vector<Operand> srcs;

    CmpCond cond = CmpCond::EQ;  ///< CMP/CMPI/FCMP only
    CmpType ctype = CmpType::Norm;
    uint8_t size = 8;    ///< LD/ST/SXT/ZXT access size; NOP unit class
    bool spec = false;   ///< control-speculative (ld.s / moved code)

    int target = -1;     ///< branch/chk target block id (-1: none)
    int callee = -1;     ///< direct-call target function id (-1: none)

    uint32_t attr = kAttrNone;

    /// Memory disambiguation hints, filled by the program builder: the
    /// data symbol this access provably stays within (-1 if unknown), and
    /// an "alias group" that over-approximates may-alias classes among
    /// unknown accesses (-1: may alias anything).
    int32_t sym_hint = -1;
    int32_t alias_group = -1;

    /// Profile annotation: times this branch was taken (branches only).
    double prof_taken = 0.0;

    /// Profile annotation for indirect calls: (callee id, count) pairs.
    std::vector<std::pair<int, double>> prof_callees;

    /// Scheduler result: issue cycle within the block (-1: unscheduled).
    int sched_cycle = -1;

    const OpcodeInfo &info() const { return opcodeInfo(op); }
    bool isLoad() const { return info().is_load; }
    bool isStore() const { return info().is_store; }
    bool isMem() const { return isLoad() || isStore(); }
    bool isBranch() const { return info().is_branch; }
    bool isCall() const { return info().is_call; }
    bool isRet() const { return info().is_ret; }
    bool
    hasGuard() const
    {
        return guard != kPrTrue;
    }

    /** Render in assembly-like text. */
    std::string str() const;
};

} // namespace epic

#endif // EPIC_IR_INSTRUCTION_H
