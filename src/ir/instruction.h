/**
 * @file
 * Instruction representation for the EPIC IR (Lcode-like: non-SSA,
 * three-operand, fully predicated).
 *
 * Every instruction carries a guard predicate (kPrTrue when unconditional),
 * up to two destinations (parallel compares write a predicate pair), a
 * source list (calls may have up to eight argument sources), an optional
 * control-flow target, a memory access size, a control-speculation flag,
 * and provenance attributes used by the experiment harnesses to attribute
 * cache misses to the transformation that created the code (tail
 * duplication, loop peeling, ...), as the paper does in Section 4.1.
 */
#ifndef EPIC_IR_INSTRUCTION_H
#define EPIC_IR_INSTRUCTION_H

#include <cstdint>
#include <string>

#include "ir/handles.h"
#include "ir/opcode.h"
#include "ir/reg.h"
#include "support/arena.h"
#include "support/smallvec.h"

namespace epic {

/** Operand: a register, an immediate, or a symbol/function reference. */
struct Operand
{
    enum class Kind : uint8_t { None, Reg, Imm, FImm, Sym, Func };

    Kind kind = Kind::None;
    Reg reg;
    int64_t imm = 0;    ///< integer immediate / symbol offset
    double fimm = 0.0;
    int32_t sym = -1;   ///< data symbol id (Kind::Sym)
    int32_t func = -1;  ///< function id (Kind::Func)

    Operand() = default;
    static Operand
    makeReg(Reg r)
    {
        Operand o;
        o.kind = Kind::Reg;
        o.reg = r;
        return o;
    }
    static Operand
    makeImm(int64_t v)
    {
        Operand o;
        o.kind = Kind::Imm;
        o.imm = v;
        return o;
    }
    static Operand
    makeFImm(double v)
    {
        Operand o;
        o.kind = Kind::FImm;
        o.fimm = v;
        return o;
    }
    static Operand
    makeSym(int32_t sym_id, int64_t offset)
    {
        Operand o;
        o.kind = Kind::Sym;
        o.sym = sym_id;
        o.imm = offset;
        return o;
    }
    static Operand
    makeFunc(int32_t func_id)
    {
        Operand o;
        o.kind = Kind::Func;
        o.func = func_id;
        return o;
    }

    bool isReg() const { return kind == Kind::Reg; }
    std::string str() const;
};

/**
 * Provenance attributes (bitmask). The I-cache experiments attribute
 * misses by these flags, reproducing the paper's Section 4.1 accounting
 * of tail-duplicated and residual-loop code.
 */
enum InstrAttr : uint32_t {
    kAttrNone = 0,
    kAttrTailDup = 1u << 0,    ///< created by tail duplication
    kAttrPeelCopy = 1u << 1,   ///< peeled-out loop iteration copy
    kAttrRemainder = 1u << 2,  ///< residual ("clean-up") loop body
    kAttrInlined = 1u << 3,    ///< inlined from another function
    kAttrPromoted = 1u << 4,   ///< predicate-promoted (speculative)
    kAttrSpecMoved = 1u << 5,  ///< moved above a branch (speculative)
    kAttrSpill = 1u << 6,      ///< register-allocator spill/fill code
    kAttrUnrolled = 1u << 7,   ///< loop-unroll copy
    kAttrAdvanced = 1u << 8,   ///< data-speculation pair (ld.a / chk.a)
};

/** Profile annotation entry for indirect calls. */
struct ProfCallee
{
    int32_t callee = -1;
    double count = 0.0;
};

/**
 * One IR instruction.
 *
 * Trivially copyable by design (DESIGN.md §16): operand lists use
 * fixed-capacity inline storage (the verifier enforces the arities) and
 * the variable-length indirect-call profile lives in the owning
 * function's arena as a raw span. That makes a function clone a memcpy
 * of instruction arrays plus explicit profile-span reattachment, and
 * lets arena rollback discard instructions without destructor sweeps.
 */
class Instruction
{
  public:
    /// Maximum destinations (parallel compares write a predicate pair).
    static constexpr uint32_t kMaxDests = 2;
    /// Maximum sources (indirect call: function token + 8 arguments).
    static constexpr uint32_t kMaxSrcs = 9;

    Opcode op = Opcode::NOP;
    Reg guard = kPrTrue;   ///< qualifying predicate
    InlineVec<Reg, kMaxDests> dests;
    InlineVec<Operand, kMaxSrcs> srcs;

    CmpCond cond = CmpCond::EQ;  ///< CMP/CMPI/FCMP only
    CmpType ctype = CmpType::Norm;
    uint8_t size = 8;    ///< LD/ST/SXT/ZXT access size; NOP unit class
    bool spec = false;   ///< control-speculative (ld.s / moved code)

    BlockId target = kNoBlock; ///< branch/chk target block id (-1: none)
    int callee = -1;     ///< direct-call target function id (-1: none)

    uint32_t attr = kAttrNone;

    /// Memory disambiguation hints, filled by the program builder: the
    /// data symbol this access provably stays within (-1 if unknown), and
    /// an "alias group" that over-approximates may-alias classes among
    /// unknown accesses (-1: may alias anything).
    int32_t sym_hint = -1;
    int32_t alias_group = -1;

    /// Profile annotation: times this branch was taken (branches only).
    double prof_taken = 0.0;

    /// Scheduler result: issue cycle within the block (-1: unscheduled).
    int sched_cycle = -1;

    /**
     * Profile annotation for indirect calls: (callee id, count) pairs
     * in the owning function's arena. The span is part of the trivial
     * copy, so cross-arena copies (clone, inlining) must call
     * reattachProf() on the destination or the span dangles once the
     * source function dies.
     */
    Span<const ProfCallee> profCallees() const
    {
        return {prof_data_, prof_len_};
    }
    Span<ProfCallee> profCallees() { return {prof_data_, prof_len_}; }

    /** Append a profile entry, growing in `a` (the owner's arena). */
    void
    addProfCallee(Arena &a, int32_t callee_id, double count)
    {
        if (prof_len_ == prof_cap_) {
            uint32_t cap = prof_cap_ ? prof_cap_ * 2 : 4;
            ProfCallee *nd = a.allocArray<ProfCallee>(cap);
            for (uint32_t i = 0; i < prof_len_; ++i)
                nd[i] = prof_data_[i];
            prof_data_ = nd; // old span abandoned in the arena
            prof_cap_ = cap;
        }
        prof_data_[prof_len_++] = ProfCallee{callee_id, count};
    }

    /** Empty the profile, keeping the span for in-place refill. */
    void clearProfCallees() { prof_len_ = 0; }

    /**
     * Empty the profile AND detach the span. Use instead of clear()
     * when this instruction was copied from another one and both are
     * still live: a trivial copy shares the span, so refilling a merely
     * cleared copy would scribble over the original's entries.
     */
    void
    dropProfCallees()
    {
        prof_data_ = nullptr;
        prof_len_ = prof_cap_ = 0;
    }

    /** Re-home the profile span into `a` after a cross-arena copy. */
    void
    reattachProf(Arena &a)
    {
        if (prof_len_ == 0) {
            prof_data_ = nullptr;
            prof_cap_ = 0;
            return;
        }
        ProfCallee *nd = a.allocArray<ProfCallee>(prof_len_);
        for (uint32_t i = 0; i < prof_len_; ++i)
            nd[i] = prof_data_[i];
        prof_data_ = nd;
        prof_cap_ = prof_len_;
    }

    const OpcodeInfo &info() const { return opcodeInfo(op); }
    bool isLoad() const { return info().is_load; }
    bool isStore() const { return info().is_store; }
    bool isMem() const { return isLoad() || isStore(); }
    bool isBranch() const { return info().is_branch; }
    bool isCall() const { return info().is_call; }
    bool isRet() const { return info().is_ret; }
    bool
    hasGuard() const
    {
        return guard != kPrTrue;
    }

    /** Render in assembly-like text. */
    std::string str() const;

  private:
    ProfCallee *prof_data_ = nullptr;
    uint32_t prof_len_ = 0;
    uint32_t prof_cap_ = 0;
};

static_assert(std::is_trivially_copyable_v<Instruction>,
              "Instruction must stay memcpy-clonable (DESIGN.md §16)");

} // namespace epic

#endif // EPIC_IR_INSTRUCTION_H
