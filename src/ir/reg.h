/**
 * @file
 * Register model for the EPIC IR.
 *
 * Four architectural register classes mirror IA-64: general (Gr, 64-bit
 * integer with a NaT bit), floating-point (Fr), predicate (Pr, 1-bit) and
 * branch (Br). A small set of low-numbered registers have architected
 * meanings; virtual registers used before allocation are numbered from
 * kFirstVirtual upward so they can never collide with architected names.
 */
#ifndef EPIC_IR_REG_H
#define EPIC_IR_REG_H

#include <cstdint>
#include <functional>
#include <string>

namespace epic {

/** Architectural register classes. */
enum class RegClass : uint8_t {
    Gr, ///< general 64-bit integer registers (with NaT bit)
    Fr, ///< floating-point registers
    Pr, ///< 1-bit predicate registers
    Br, ///< branch registers
};

/** Printable name of a register class ("gr", "fr", "pr", "br"). */
const char *regClassName(RegClass cls);

/** A register reference: class + number. */
struct Reg
{
    RegClass cls = RegClass::Gr;
    int32_t id = -1;

    constexpr Reg() = default;
    constexpr Reg(RegClass c, int32_t i) : cls(c), id(i) {}

    constexpr bool valid() const { return id >= 0; }
    constexpr bool operator==(const Reg &o) const
    {
        return cls == o.cls && id == o.id;
    }
    constexpr bool operator!=(const Reg &o) const { return !(*this == o); }
    constexpr bool operator<(const Reg &o) const
    {
        return cls != o.cls ? cls < o.cls : id < o.id;
    }

    /** Textual form, e.g. "gr42" or "pr0". */
    std::string str() const;
};

/// Architected always-zero general register (reads as 0, writes ignored).
inline constexpr Reg kGrZero{RegClass::Gr, 0};
/// Architected always-true predicate (IA-64 p0).
inline constexpr Reg kPrTrue{RegClass::Pr, 0};
/// Stack pointer by convention.
inline constexpr Reg kGrSp{RegClass::Gr, 12};

/// Number of physical registers per class (IA-64: 128 GR, 128 FR, 64 PR,
/// 8 BR).
int physRegCount(RegClass cls);

/// First id handed out for virtual registers (above all architected names).
inline constexpr int32_t kFirstVirtual = 128;

/** True if the register is a virtual (pre-allocation) name. */
inline constexpr bool
isVirtual(Reg r)
{
    return r.id >= kFirstVirtual;
}

} // namespace epic

template <>
struct std::hash<epic::Reg>
{
    size_t
    operator()(const epic::Reg &r) const noexcept
    {
        return std::hash<uint64_t>()(
            (static_cast<uint64_t>(r.cls) << 32) |
            static_cast<uint32_t>(r.id));
    }
};

#endif // EPIC_IR_REG_H
