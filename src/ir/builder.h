/**
 * @file
 * Convenience builder for constructing IR programs (the workload
 * generators and unit tests are its main clients).
 *
 * The builder tracks a current function and insertion block; emit helpers
 * allocate a destination virtual register and return it. All helpers take
 * an optional guard predicate (defaults to always-true kPrTrue).
 */
#ifndef EPIC_IR_BUILDER_H
#define EPIC_IR_BUILDER_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "ir/program.h"

namespace epic {

/** Memory-disambiguation hint attached to loads/stores by the builder. */
struct MemHint
{
    int32_t sym = -1;   ///< symbol the access provably stays within
    int32_t group = -1; ///< alias group among hint-less accesses
};

/** Fluent IR construction helper. */
class IRBuilder
{
  public:
    explicit IRBuilder(Program &prog) : prog_(prog) {}

    /**
     * Create a function with `nparams` parameters and make it current.
     * The entry block is created and becomes the insertion point.
     */
    Function *beginFunction(const std::string &name, int nparams,
                            uint32_t attr = kFuncNone);

    /** Switch to an existing function (insertion block must be set). */
    void setFunction(Function *f);
    /** Set the insertion block. */
    void setBlock(BasicBlock *b) { bb_ = b; }

    Function *function() { return fn_; }
    BasicBlock *blockNow() { return bb_; }
    Program &program() { return prog_; }

    /** Create a new empty block in the current function. */
    BasicBlock *newBlock();

    /** i-th parameter register of the current function. */
    Reg param(int i) const;

    // ---- Register creation ----
    Reg gr() { return fn_->makeReg(RegClass::Gr); }
    Reg fr() { return fn_->makeReg(RegClass::Fr); }
    Reg pr() { return fn_->makeReg(RegClass::Pr); }

    // ---- Data movement ----
    Reg movi(int64_t v, Reg guard = kPrTrue);
    void moviTo(Reg d, int64_t v, Reg guard = kPrTrue);
    Reg mov(Reg s, Reg guard = kPrTrue);
    void movTo(Reg d, Reg s, Reg guard = kPrTrue);
    Reg mova(int sym, int64_t offset = 0, Reg guard = kPrTrue);
    Reg movfn(const Function *f, Reg guard = kPrTrue);
    void movp(Reg pd, bool value, Reg guard = kPrTrue);

    // ---- Integer arithmetic ----
    Reg add(Reg a, Reg b, Reg guard = kPrTrue);
    void addTo(Reg d, Reg a, Reg b, Reg guard = kPrTrue);
    Reg addi(Reg a, int64_t imm, Reg guard = kPrTrue);
    void addiTo(Reg d, Reg a, int64_t imm, Reg guard = kPrTrue);
    Reg sub(Reg a, Reg b, Reg guard = kPrTrue);
    Reg subi(Reg a, int64_t imm, Reg guard = kPrTrue);
    Reg mul(Reg a, Reg b, Reg guard = kPrTrue);
    Reg div(Reg a, Reg b, Reg guard = kPrTrue);
    Reg rem(Reg a, Reg b, Reg guard = kPrTrue);
    Reg and_(Reg a, Reg b, Reg guard = kPrTrue);
    Reg andi(Reg a, int64_t imm, Reg guard = kPrTrue);
    Reg or_(Reg a, Reg b, Reg guard = kPrTrue);
    Reg ori(Reg a, int64_t imm, Reg guard = kPrTrue);
    Reg xor_(Reg a, Reg b, Reg guard = kPrTrue);
    Reg xori(Reg a, int64_t imm, Reg guard = kPrTrue);
    Reg shli(Reg a, int64_t sh, Reg guard = kPrTrue);
    Reg shri(Reg a, int64_t sh, Reg guard = kPrTrue);
    Reg sari(Reg a, int64_t sh, Reg guard = kPrTrue);
    Reg shl(Reg a, Reg b, Reg guard = kPrTrue);
    Reg shr(Reg a, Reg b, Reg guard = kPrTrue);

    // ---- Compares (return the {true, false} predicate pair) ----
    std::pair<Reg, Reg> cmp(CmpCond cond, Reg a, Reg b,
                            CmpType ctype = CmpType::Norm,
                            Reg guard = kPrTrue);
    std::pair<Reg, Reg> cmpi(CmpCond cond, Reg a, int64_t imm,
                             CmpType ctype = CmpType::Norm,
                             Reg guard = kPrTrue);

    // ---- Memory ----
    Reg ld(Reg addr, int size = 8, MemHint hint = {}, Reg guard = kPrTrue);
    void ldTo(Reg d, Reg addr, int size = 8, MemHint hint = {},
              Reg guard = kPrTrue);
    void st(Reg addr, Reg val, int size = 8, MemHint hint = {},
            Reg guard = kPrTrue);
    Reg ldf(Reg addr, MemHint hint = {}, Reg guard = kPrTrue);
    void stf(Reg addr, Reg val, MemHint hint = {}, Reg guard = kPrTrue);

    // ---- Floating point ----
    Reg fmovi(double v, Reg guard = kPrTrue);
    Reg fadd(Reg a, Reg b, Reg guard = kPrTrue);
    Reg fsub(Reg a, Reg b, Reg guard = kPrTrue);
    Reg fmul(Reg a, Reg b, Reg guard = kPrTrue);
    Reg cvtif(Reg a, Reg guard = kPrTrue);
    Reg cvtfi(Reg a, Reg guard = kPrTrue);

    // ---- Control flow ----
    /** Conditional branch: taken when `pred` is true. */
    void br(Reg pred, BasicBlock *tgt);
    /** Unconditional branch. */
    void jump(BasicBlock *tgt);
    /** Set the fall-through successor of the current block. */
    void fallthrough(BasicBlock *next) { bb_->fallthrough = next->id; }
    /** Direct call with a return value. */
    Reg call(const Function *f, std::initializer_list<Reg> args,
             Reg guard = kPrTrue);
    /** Direct call without a return value. */
    void callv(const Function *f, std::initializer_list<Reg> args,
               Reg guard = kPrTrue);
    /** Indirect call through a function token. */
    Reg icall(Reg fn_token, std::initializer_list<Reg> args,
              Reg guard = kPrTrue);
    /** Return (optionally with a value). */
    void ret(Reg val = Reg(), Reg guard = kPrTrue);

    /** Append an arbitrary prebuilt instruction. */
    Instruction &emit(Instruction inst);

  private:
    Instruction &push(Opcode op, Reg guard);

    Program &prog_;
    Function *fn_ = nullptr;
    BasicBlock *bb_ = nullptr;
};

} // namespace epic

#endif // EPIC_IR_BUILDER_H
