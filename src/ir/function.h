/**
 * @file
 * Function representation: an id-indexed collection of blocks, parameter
 * registers, virtual-register counters, and post-compilation artifacts
 * (register-stack frame size, spill bytes, code placement).
 */
#ifndef EPIC_IR_FUNCTION_H
#define EPIC_IR_FUNCTION_H

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "ir/basic_block.h"
#include "ir/reg.h"

namespace epic {

/** Function attribute flags. */
enum FuncAttr : uint32_t {
    kFuncNone = 0,
    /// A "system library" function: always compiled at the weak (GCC-like)
    /// level regardless of configuration, reproducing the paper's
    /// gcc-compiled chunk_alloc/chunk_free/memcpy in vortex (Fig. 10).
    kFuncLibrary = 1u << 0,
    /// Pointer analysis disabled for this function (paper: eon, perlbmk).
    kFuncNoPointerAnalysis = 1u << 1,
    /// Never inline this function.
    kFuncNoInline = 1u << 2,
};

/** A compiled or to-be-compiled function. */
class Function
{
  public:
    Function(int func_id, std::string func_name)
        : id(func_id), name(std::move(func_name))
    {
        next_virt_.fill(kFirstVirtual);
    }

    int id;
    std::string name;
    uint32_t attr = kFuncNone;

    /// Registers that receive the arguments on entry (virtual before
    /// register allocation; rewritten by the allocator).
    std::vector<Reg> params;

    int entry = 0; ///< entry block id

    /// Blocks indexed by id; deleted blocks leave a null slot.
    std::vector<std::unique_ptr<BasicBlock>> blocks;

    /// Profile: number of invocations in the training run.
    double weight = 0.0;

    // ---- Post-register-allocation artifacts ----
    bool reg_allocated = false;
    int stacked_regs = 0;  ///< register-stack frame size (alloc)
    int spill_slots = 0;   ///< spill area size in 8-byte slots

    /** Allocate a fresh virtual register of the given class. */
    Reg
    makeReg(RegClass cls)
    {
        return Reg(cls, next_virt_[static_cast<int>(cls)]++);
    }

    /** First never-used virtual id for a class (for dense renaming). */
    int
    virtLimit(RegClass cls) const
    {
        return next_virt_[static_cast<int>(cls)];
    }

    /** Note that register ids up to (and including) `id` are in use. */
    void
    reserveVirt(RegClass cls, int reg_id)
    {
        auto &n = next_virt_[static_cast<int>(cls)];
        if (reg_id >= n)
            n = reg_id + 1;
    }

    /** Create a new (empty) block; returns a non-owning pointer. */
    BasicBlock *
    newBlock()
    {
        int bid = static_cast<int>(blocks.size());
        blocks.push_back(std::make_unique<BasicBlock>(bid));
        return blocks[bid].get();
    }

    /** Access a block by id (null if deleted). */
    BasicBlock *
    block(int bid)
    {
        return bid >= 0 && bid < static_cast<int>(blocks.size())
                   ? blocks[bid].get()
                   : nullptr;
    }
    const BasicBlock *
    block(int bid) const
    {
        return bid >= 0 && bid < static_cast<int>(blocks.size())
                   ? blocks[bid].get()
                   : nullptr;
    }

    /** Number of live (non-deleted) blocks. */
    int liveBlockCount() const;

    /** Total static instruction count over live blocks. */
    int staticInstrCount() const;

    /** Total static bundle count over live blocks (post-scheduling). */
    int staticBundleCount() const;

    /** Remove a block (slot becomes null; ids of others are stable). */
    void
    eraseBlock(int bid)
    {
        if (bid >= 0 && bid < static_cast<int>(blocks.size()))
            blocks[bid].reset();
    }

    /**
     * Deep-copy this function (same id). The compilation firewall
     * transforms the copy and commits it back only after every pass
     * verifies; Program::clone also builds on this.
     */
    std::unique_ptr<Function> clone() const;

  private:
    /// Next virtual register id per register class.
    std::array<int32_t, 4> next_virt_;
};

} // namespace epic

#endif // EPIC_IR_FUNCTION_H
