/**
 * @file
 * Function representation: an id-indexed collection of blocks, parameter
 * registers, virtual-register counters, and post-compilation artifacts
 * (register-stack frame size, spill bytes, code placement).
 */
#ifndef EPIC_IR_FUNCTION_H
#define EPIC_IR_FUNCTION_H

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "ir/basic_block.h"
#include "ir/handles.h"
#include "ir/reg.h"
#include "support/arena.h"

namespace epic {

/** Function attribute flags. */
enum FuncAttr : uint32_t {
    kFuncNone = 0,
    /// A "system library" function: always compiled at the weak (GCC-like)
    /// level regardless of configuration, reproducing the paper's
    /// gcc-compiled chunk_alloc/chunk_free/memcpy in vortex (Fig. 10).
    kFuncLibrary = 1u << 0,
    /// Pointer analysis disabled for this function (paper: eon, perlbmk).
    kFuncNoPointerAnalysis = 1u << 1,
    /// Never inline this function.
    kFuncNoInline = 1u << 2,
};

/**
 * A compiled or to-be-compiled function.
 *
 * Owns a bump arena holding every per-node IR object: the BasicBlock
 * objects, their instruction/bundle arrays, and instruction profile
 * spans (DESIGN.md §16). `blocks` stores plain arena pointers indexed
 * by BlockId; nothing in the IR graph is individually freed — storage
 * is reclaimed wholesale when the function dies or when the firewall
 * rolls the arena back to rebuild a failed attempt in place.
 */
class Function
{
    /// Declared first so it outlives (and constructs before) every
    /// arena-bound member below.
    Arena arena_;

  public:
    Function(int func_id, std::string func_name)
        : id(func_id), name(std::move(func_name)), blocks(&arena_)
    {
        next_virt_.fill(kFirstVirtual);
    }

    int id;
    std::string name;
    uint32_t attr = kFuncNone;

    /// Registers that receive the arguments on entry (virtual before
    /// register allocation; rewritten by the allocator).
    std::vector<Reg> params;

    BlockId entry = 0; ///< entry block id

    /// Blocks indexed by id; deleted blocks leave a null slot. The
    /// pointees live in arena().
    ArenaVec<BasicBlock *> blocks;

    /// Profile: number of invocations in the training run.
    double weight = 0.0;

    // ---- Post-register-allocation artifacts ----
    bool reg_allocated = false;
    int stacked_regs = 0;  ///< register-stack frame size (alloc)
    int spill_slots = 0;   ///< spill area size in 8-byte slots

    /** Allocate a fresh virtual register of the given class. */
    Reg
    makeReg(RegClass cls)
    {
        return Reg(cls, next_virt_[static_cast<int>(cls)]++);
    }

    /** First never-used virtual id for a class (for dense renaming). */
    int
    virtLimit(RegClass cls) const
    {
        return next_virt_[static_cast<int>(cls)];
    }

    /** Note that register ids up to (and including) `id` are in use. */
    void
    reserveVirt(RegClass cls, int reg_id)
    {
        auto &n = next_virt_[static_cast<int>(cls)];
        if (reg_id >= n)
            n = reg_id + 1;
    }

    /** The bump arena every IR node of this function lives in. */
    Arena &arena() { return arena_; }
    const Arena &arena() const { return arena_; }

    /** Create a new (empty) block; returns a non-owning pointer. */
    BasicBlock *
    newBlock()
    {
        BlockId bid = static_cast<BlockId>(blocks.size());
        blocks.push_back(arena_.create<BasicBlock>(bid, &arena_));
        return blocks[bid];
    }

    /** Access a block by id (null if deleted). */
    BasicBlock *
    block(BlockId bid)
    {
        return bid >= 0 && bid < static_cast<BlockId>(blocks.size())
                   ? blocks[bid]
                   : nullptr;
    }
    const BasicBlock *
    block(BlockId bid) const
    {
        return bid >= 0 && bid < static_cast<BlockId>(blocks.size())
                   ? blocks[bid]
                   : nullptr;
    }

    /** Number of live (non-deleted) blocks. */
    int liveBlockCount() const;

    /** Total static instruction count over live blocks. */
    int staticInstrCount() const;

    /** Total static bundle count over live blocks (post-scheduling). */
    int staticBundleCount() const;

    /** Remove a block (slot becomes null; ids of others are stable). */
    void
    eraseBlock(BlockId bid)
    {
        if (bid >= 0 && bid < static_cast<BlockId>(blocks.size()))
            blocks[bid] = nullptr;
    }

    /**
     * Deep-copy this function (same id) into a fresh arena. The
     * compilation firewall transforms the copy and commits it back only
     * after every pass verifies; Program::clone also builds on this.
     * `arena_byte_budget` (0 = unlimited) caps the copy's arena so the
     * whole attempt — clone included — honors --max-mem-pages.
     */
    std::unique_ptr<Function> clone(uint64_t arena_byte_budget = 0) const;

    /**
     * Rebuild `dst` as a copy of this function, reusing dst's arena:
     * the arena is rolled back to empty (one O(1) watermark rollback,
     * retained chunks are reused) and the blocks are bulk-copied in.
     * This is the firewall's retry path — a failed attempt's storage is
     * recycled with zero frees and, once warm, zero mallocs.
     */
    void cloneInto(Function &dst) const;

  private:
    /// Next virtual register id per register class.
    std::array<int32_t, 4> next_virt_;
};

} // namespace epic

#endif // EPIC_IR_FUNCTION_H
