#include "ir/reg.h"

namespace epic {

const char *
regClassName(RegClass cls)
{
    switch (cls) {
      case RegClass::Gr: return "gr";
      case RegClass::Fr: return "fr";
      case RegClass::Pr: return "pr";
      case RegClass::Br: return "br";
    }
    return "?";
}

std::string
Reg::str() const
{
    if (!valid())
        return "<invalid-reg>";
    return std::string(regClassName(cls)) + std::to_string(id);
}

int
physRegCount(RegClass cls)
{
    switch (cls) {
      case RegClass::Gr: return 128;
      case RegClass::Fr: return 128;
      case RegClass::Pr: return 64;
      case RegClass::Br: return 8;
    }
    return 0;
}

} // namespace epic
