#include "ir/verifier.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "analysis/predrel.h"
#include "support/logging.h"

namespace epic {

namespace {

struct Checker
{
    const Function &f;
    std::vector<std::string> errors;

    void
    fail(const BasicBlock *b, const std::string &msg)
    {
        std::ostringstream os;
        os << f.name;
        if (b)
            os << " bb" << b->id;
        os << ": " << msg;
        errors.push_back(os.str());
    }

    bool
    validTarget(int bid) const
    {
        return f.block(bid) != nullptr;
    }

    void
    checkReg(const BasicBlock *b, const Instruction &inst, Reg r,
             RegClass want, const char *role)
    {
        if (!r.valid()) {
            fail(b, std::string("invalid ") + role + " register in '" +
                     inst.str() + "'");
            return;
        }
        if (r.cls != want) {
            fail(b, std::string(role) + " register class mismatch in '" +
                     inst.str() + "'");
        }
        if (f.reg_allocated && r.id >= kFirstVirtual) {
            fail(b, std::string("virtual register after allocation in '") +
                     inst.str() + "'");
        }
        if (f.reg_allocated && r.id >= physRegCount(r.cls)) {
            fail(b, std::string("register id out of physical range in '") +
                     inst.str() + "'");
        }
    }

    void
    checkInstr(const BasicBlock *b, const Instruction &inst)
    {
        checkReg(b, inst, inst.guard, RegClass::Pr, "guard");

        auto expect_dests = [&](size_t n, RegClass cls) {
            if (inst.dests.size() != n) {
                fail(b, "wrong destination count in '" + inst.str() + "'");
                return;
            }
            for (const Reg &d : inst.dests)
                checkReg(b, inst, d, cls, "dest");
        };
        auto src_reg = [&](size_t i, RegClass cls) {
            if (i >= inst.srcs.size() || !inst.srcs[i].isReg()) {
                fail(b, "expected register source in '" + inst.str() + "'");
                return;
            }
            checkReg(b, inst, inst.srcs[i].reg, cls, "src");
        };

        switch (inst.op) {
          case Opcode::MOV:
            expect_dests(1, RegClass::Gr);
            src_reg(0, RegClass::Gr);
            break;
          case Opcode::MOVI:
          case Opcode::MOVA:
          case Opcode::MOVFN:
            expect_dests(1, RegClass::Gr);
            if (inst.srcs.size() != 1)
                fail(b, "wrong source count in '" + inst.str() + "'");
            break;
          case Opcode::MOVP:
            expect_dests(1, RegClass::Pr);
            break;
          case Opcode::ADD: case Opcode::SUB: case Opcode::AND:
          case Opcode::OR: case Opcode::XOR: case Opcode::MUL:
          case Opcode::DIV: case Opcode::REM: case Opcode::SHL:
          case Opcode::SHR: case Opcode::SAR:
            expect_dests(1, RegClass::Gr);
            src_reg(0, RegClass::Gr);
            src_reg(1, RegClass::Gr);
            break;
          case Opcode::ADDI: case Opcode::SUBI: case Opcode::ANDI:
          case Opcode::ORI: case Opcode::XORI: case Opcode::SHLI:
          case Opcode::SHRI: case Opcode::SARI:
          case Opcode::SXT: case Opcode::ZXT:
            expect_dests(1, RegClass::Gr);
            src_reg(0, RegClass::Gr);
            break;
          case Opcode::CMP:
            expect_dests(2, RegClass::Pr);
            src_reg(0, RegClass::Gr);
            src_reg(1, RegClass::Gr);
            break;
          case Opcode::CMPI:
            expect_dests(2, RegClass::Pr);
            src_reg(0, RegClass::Gr);
            break;
          case Opcode::FCMP:
            expect_dests(2, RegClass::Pr);
            break;
          case Opcode::LD:
          case Opcode::LD_A:
          case Opcode::CHK_A:
            expect_dests(1, RegClass::Gr);
            src_reg(0, RegClass::Gr);
            break;
          case Opcode::ST:
            src_reg(0, RegClass::Gr);
            src_reg(1, RegClass::Gr);
            break;
          case Opcode::LDF:
            expect_dests(1, RegClass::Fr);
            src_reg(0, RegClass::Gr);
            break;
          case Opcode::STF:
            src_reg(0, RegClass::Gr);
            src_reg(1, RegClass::Fr);
            break;
          case Opcode::CVTFI:
            expect_dests(1, RegClass::Gr);
            src_reg(0, RegClass::Fr);
            break;
          case Opcode::CVTIF:
            expect_dests(1, RegClass::Fr);
            src_reg(0, RegClass::Gr);
            break;
          case Opcode::BR:
            if (!validTarget(inst.target))
                fail(b, "branch to dead/invalid block in '" + inst.str() +
                         "'");
            break;
          case Opcode::CHK_S:
            src_reg(0, RegClass::Gr);
            if (!validTarget(inst.target))
                fail(b, "chk.s to dead/invalid block");
            break;
          case Opcode::BR_CALL:
            if (inst.callee < 0)
                fail(b, "call without callee");
            if (inst.srcs.size() > 8)
                fail(b, "more than 8 call arguments");
            break;
          case Opcode::BR_ICALL:
            if (inst.srcs.empty() || !inst.srcs[0].isReg())
                fail(b, "indirect call without token register");
            if (inst.srcs.size() > 9)
                fail(b, "more than 8 indirect-call arguments");
            break;
          case Opcode::BR_RET:
          case Opcode::ALLOC:
          case Opcode::NOP:
            break;
          default:
            break;
        }

        if (inst.spec && !inst.isLoad() && inst.op != Opcode::CHK_S) {
            // Only loads carry an explicit speculative form; other moved
            // code is marked via attr, not spec.
            if (!inst.info().has_side_effect) {
                // Non-load spec flags are tolerated but unusual.
            } else {
                fail(b, "side-effecting instruction marked speculative: '" +
                         inst.str() + "'");
            }
        }
    }

    void
    checkBlock(const BasicBlock &b)
    {
        for (const Instruction &inst : b.instrs)
            checkInstr(&b, inst);

        if (!b.endsInUnconditionalTransfer()) {
            if (b.fallthrough < 0) {
                fail(&b, "no fallthrough and no terminating transfer");
            } else if (!validTarget(b.fallthrough)) {
                fail(&b, "fallthrough to dead/invalid block");
            }
        }

        if (b.scheduled())
            checkSchedule(b);
    }

    void
    checkSchedule(const BasicBlock &b)
    {
        // Every instruction appears exactly once in the bundles.
        std::vector<int> seen(b.instrs.size(), 0);
        for (const Bundle &bun : b.bundles) {
            for (int16_t s : bun.slots) {
                if (s == kSlotNop)
                    continue;
                if (s < 0 || s >= static_cast<int>(b.instrs.size())) {
                    fail(&b, "bundle slot references bad instruction");
                    continue;
                }
                seen[s]++;
            }
        }
        for (size_t i = 0; i < seen.size(); ++i) {
            if (seen[i] != 1) {
                fail(&b, "instruction " + std::to_string(i) +
                         " appears " + std::to_string(seen[i]) +
                         " times in bundles");
            }
        }

        // Per issue group: branches last; no intra-group RAW/WAW except
        // (a) the compare-to-dependent-branch-guard special case,
        // (b) instructions guarded by provably disjoint predicates
        //     (IA-64 allows same-group writes under mutually exclusive
        //     qualifying predicates), and
        // (c) reads after a chk.a writing the same register — on a hit
        //     chk.a writes nothing (the paired ld.a already delivered
        //     the value), and on a miss the pipeline re-steers, so the
        //     consumer never observes a torn value.
        PredRelations prel(b);
        auto effective_guard = [](const Instruction &inst) {
            if ((inst.op == Opcode::CMP || inst.op == Opcode::CMPI) &&
                inst.ctype == CmpType::Unc) {
                return kPrTrue; // unc compares write unconditionally
            }
            return inst.guard;
        };
        auto disjoint = [&](const Instruction &x, int xpos,
                            const Instruction &y, int ypos) {
            Reg gx = effective_guard(x);
            Reg gy = effective_guard(y);
            if (gx == kPrTrue || gy == kPrTrue)
                return false;
            return prel.disjointAt(xpos, gx, gy) &&
                   prel.disjointAt(ypos, gx, gy);
        };

        size_t g_start = 0;
        while (g_start < b.bundles.size()) {
            size_t g_end = g_start;
            while (g_end < b.bundles.size() &&
                   !b.bundles[g_end].stop_after) {
                ++g_end;
            }
            // Group covers bundles [g_start, g_end] inclusive.
            // written: reg -> source position of the writing instr.
            std::unordered_map<Reg, int> written;
            std::vector<Reg> cmp_dests;
            bool branch_seen = false;
            for (size_t bi = g_start;
                 bi <= g_end && bi < b.bundles.size(); ++bi) {
                for (int16_t s : b.bundles[bi].slots) {
                    if (s == kSlotNop)
                        continue;
                    const Instruction &inst = b.instrs[s];
                    if (branch_seen && !inst.isBranch()) {
                        fail(&b,
                             "non-branch after branch in issue group: '" +
                                 inst.str() + "'");
                    }
                    // RAW check on register sources.
                    for (const Operand &o : inst.srcs) {
                        if (!o.isReg() || o.reg == kGrZero)
                            continue;
                        auto it = written.find(o.reg);
                        if (it != written.end() &&
                            b.instrs[it->second].op != Opcode::CHK_A &&
                            !disjoint(inst, s, b.instrs[it->second],
                                      it->second)) {
                            fail(&b, "intra-group RAW on " + o.reg.str() +
                                     " at '" + inst.str() + "'");
                        }
                    }
                    // Guard RAW: allowed only for branches whose guard
                    // was produced by a compare in this group (IA-64
                    // special rule).
                    if (inst.guard != kPrTrue &&
                        written.count(inst.guard)) {
                        bool from_cmp = false;
                        for (const Reg &cd : cmp_dests)
                            if (cd == inst.guard)
                                from_cmp = true;
                        if (!(inst.isBranch() && from_cmp)) {
                            fail(&b, "intra-group guard RAW at '" +
                                     inst.str() + "'");
                        }
                    }
                    for (const Reg &d : inst.dests) {
                        if (d == kGrZero)
                            continue;
                        auto it = written.find(d);
                        if (it != written.end() &&
                            !disjoint(inst, s, b.instrs[it->second],
                                      it->second)) {
                            fail(&b, "intra-group WAW on " + d.str() +
                                     " at '" + inst.str() + "'");
                        }
                        written[d] = s;
                        if (inst.op == Opcode::CMP ||
                            inst.op == Opcode::CMPI ||
                            inst.op == Opcode::FCMP) {
                            cmp_dests.push_back(d);
                        }
                    }
                    if (inst.isBranch())
                        branch_seen = true;
                }
            }
            g_start = g_end + 1;
        }
    }
};

} // namespace

std::vector<std::string>
verifyFunction(const Function &f)
{
    Checker c{f, {}};
    if (!f.block(f.entry)) {
        c.fail(nullptr, "missing entry block");
        return c.errors;
    }
    for (const auto &b : f.blocks)
        if (b)
            c.checkBlock(*b);
    return c.errors;
}

std::vector<std::string>
verifyProgram(const Program &p)
{
    std::vector<std::string> all;
    for (const auto &f : p.funcs) {
        if (!f)
            continue;
        auto errs = verifyFunction(*f);
        all.insert(all.end(), errs.begin(), errs.end());
        // Check call targets against the program.
        for (const auto &b : f->blocks) {
            if (!b)
                continue;
            for (const Instruction &inst : b->instrs) {
                if (inst.op == Opcode::BR_CALL && !p.func(inst.callee)) {
                    all.push_back(f->name + ": call to invalid function " +
                                  std::to_string(inst.callee));
                }
            }
        }
    }
    if (p.entry_func >= 0 && !p.func(p.entry_func))
        all.push_back("invalid program entry function");
    return all;
}

std::string
VerifyReport::str() const
{
    std::ostringstream os;
    for (const std::string &e : errors)
        os << "verify[" << phase << "]: " << e << "\n";
    return os.str();
}

VerifyReport
verifyAll(const Program &p, const char *phase)
{
    VerifyReport rep;
    rep.phase = phase;
    rep.errors = verifyProgram(p);
    return rep;
}

void
verifyOrDie(const Program &p, const char *phase)
{
    auto errs = verifyProgram(p);
    if (!errs.empty()) {
        // Print the complete list (not just the first error): when a
        // transform breaks several functions at once, the full set is
        // what identifies the shared root cause.
        for (const std::string &e : errs)
            epic_warn("verify[", phase, "]: ", e);
        epic_panic("IR verification failed after ", phase, " (",
                   errs.size(), " errors)");
    }
}

} // namespace epic
